"""Analytic M/M/c queue (Erlang-C) — extension substrate.

The paper models every service instance as its own M/M/1 queue and
*suggests* placing all ``M_f`` instances of a VNF on one node.  A natural
design alternative — used by our ablation benchmarks — is to treat the
``M_f`` instances as a single M/M/c station with a shared buffer.  This
module provides the Erlang-C analytics for that comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import UnstableQueueError, ValidationError


@dataclass(frozen=True)
class MMCQueue:
    """Steady-state analytics for an M/M/c queue with FCFS discipline.

    Parameters
    ----------
    arrival_rate:
        Total Poisson arrival rate ``Lambda`` (packets/s).
    service_rate:
        Per-server exponential rate ``mu`` (packets/s).
    servers:
        Number of identical parallel servers ``c >= 1``.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.service_rate <= 0.0:
            raise ValidationError(
                f"service rate must be positive, got {self.service_rate!r}"
            )
        if self.arrival_rate < 0.0:
            raise ValidationError(
                f"arrival rate must be non-negative, got {self.arrival_rate!r}"
            )
        if self.servers < 1:
            raise ValidationError(f"server count must be >= 1, got {self.servers!r}")

    @property
    def offered_load(self) -> float:
        """Offered load in Erlangs, ``a = Lambda / mu``."""
        return self.arrival_rate / self.service_rate

    @property
    def rho(self) -> float:
        """Per-server utilization ``rho = Lambda / (c mu)``."""
        return self.offered_load / self.servers

    @property
    def is_stable(self) -> bool:
        """Whether a steady state exists (``rho < 1``)."""
        return self.rho < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise UnstableQueueError(
                f"M/M/{self.servers} queue with Lambda={self.arrival_rate:.6g}, "
                f"mu={self.service_rate:.6g} (rho={self.rho:.6g}) has no steady state"
            )

    def erlang_c(self) -> float:
        """Probability an arriving packet must wait (Erlang-C formula).

        Computed with the standard numerically-stable recurrence on the
        Erlang-B blocking probability:
        ``B(0) = 1``, ``B(k) = a B(k-1) / (k + a B(k-1))``, then
        ``C = B(c) / (1 - rho (1 - B(c)))``.
        """
        self._require_stable()
        a = self.offered_load
        blocking = 1.0
        for k in range(1, self.servers + 1):
            blocking = a * blocking / (k + a * blocking)
        rho = self.rho
        return blocking / (1.0 - rho * (1.0 - blocking))

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in the buffer, ``Wq = C / (c mu - Lambda)``."""
        self._require_stable()
        return self.erlang_c() / (
            self.servers * self.service_rate - self.arrival_rate
        )

    @property
    def mean_response_time(self) -> float:
        """Mean sojourn time, ``W = Wq + 1/mu``."""
        return self.mean_waiting_time + 1.0 / self.service_rate

    @property
    def mean_queue_length(self) -> float:
        """Mean packets in the buffer (Little: ``Nq = Lambda Wq``)."""
        return self.arrival_rate * self.mean_waiting_time

    @property
    def mean_number_in_system(self) -> float:
        """Mean packets in the station (Little: ``N = Lambda W``)."""
        return self.arrival_rate * self.mean_response_time

    def prob_n_in_system(self, n: int) -> float:
        """Steady-state probability of ``n`` packets in the station."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n!r}")
        self._require_stable()
        a = self.offered_load
        c = self.servers
        # pi(0) from the standard normalization.
        tail = (a**c / math.factorial(c)) * (1.0 / (1.0 - self.rho))
        head = sum(a**k / math.factorial(k) for k in range(c))
        pi0 = 1.0 / (head + tail)
        if n < c:
            return pi0 * a**n / math.factorial(n)
        return pi0 * a**n / (math.factorial(c) * c ** (n - c))
