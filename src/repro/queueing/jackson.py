"""Open Jackson network solver.

Jackson's theorem: in an open network of ``n`` single-server Markovian
stations with external Poisson arrivals ``lambda0`` and Markovian routing
``R``, the steady-state joint distribution factorizes — each station ``i``
behaves as an independent M/M/1 queue with arrival rate ``lambda_i``
solving the traffic equations ``lambda = lambda0 + R^T lambda``.

Two entry points:

* :class:`OpenJacksonNetwork` — the general solver over an arbitrary
  routing matrix.  Used directly by the discrete-event-simulator
  validation tests and by power users who build their own topologies.
* :class:`ChainFeedbackModel` — the paper's special case (Fig. 3): a
  linear chain of VNFs with a source-side retransmission feedback loop of
  probability ``1 - P``.  Its closed forms,

      ``E[T_i] = 1 / (P mu_i - lambda_0)``,

  are what Eqs. (11)/(12) use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.feedback import validate_delivery_probability
from repro.queueing.kleinrock import solve_traffic_equations
from repro.queueing.mm1 import MM1Queue


@dataclass(frozen=True)
class JacksonNodeMetrics:
    """Steady-state metrics of one station of an open Jackson network."""

    index: int
    arrival_rate: float
    service_rate: float
    utilization: float
    mean_number_in_system: float
    mean_response_time: float
    mean_waiting_time: float


@dataclass(frozen=True)
class JacksonSolution:
    """Solved steady state of an open Jackson network."""

    node_metrics: List[JacksonNodeMetrics]
    total_external_rate: float

    @property
    def mean_total_number(self) -> float:
        """Expected total packets in the network, ``sum_i N_i``."""
        return sum(m.mean_number_in_system for m in self.node_metrics)

    @property
    def mean_network_response_time(self) -> float:
        """Mean end-to-end time per *external* arrival (Little's law).

        ``E[T] = E[N] / lambda0_total`` — the average time an external
        packet spends in the network, counting revisits caused by
        feedback routing.
        """
        if self.total_external_rate <= 0.0:
            raise ValidationError(
                "network response time is undefined with zero external traffic"
            )
        return self.mean_total_number / self.total_external_rate

    def bottleneck(self) -> JacksonNodeMetrics:
        """Return the station with the highest utilization."""
        return max(self.node_metrics, key=lambda m: m.utilization)


class OpenJacksonNetwork:
    """An open Jackson network over an arbitrary routing matrix.

    Parameters
    ----------
    service_rates:
        Per-station exponential service rates ``mu_i > 0``.
    routing_matrix:
        ``R[j, i]`` = probability a packet finishing service at station
        ``j`` proceeds to station ``i``; row deficits leave the network.
    external_rates:
        Per-station external Poisson arrival rates ``lambda0_i >= 0``.
    """

    def __init__(
        self,
        service_rates: Sequence[float],
        routing_matrix: Sequence[Sequence[float]],
        external_rates: Sequence[float],
    ) -> None:
        self._mu = np.asarray(service_rates, dtype=float)
        if np.any(self._mu <= 0.0):
            raise ValidationError("all service rates must be positive")
        self._routing = np.asarray(routing_matrix, dtype=float)
        self._lam0 = np.asarray(external_rates, dtype=float)
        n = self._mu.shape[0]
        if self._routing.shape != (n, n):
            raise ValidationError(
                f"routing matrix shape {self._routing.shape} does not match "
                f"{n} stations"
            )
        if self._lam0.shape[0] != n:
            raise ValidationError(
                f"{self._lam0.shape[0]} external rates given for {n} stations"
            )
        self._arrival_rates: Optional[np.ndarray] = None

    @property
    def num_stations(self) -> int:
        """Number of stations in the network."""
        return self._mu.shape[0]

    def arrival_rates(self) -> np.ndarray:
        """Equivalent total arrival rates from the traffic equations."""
        if self._arrival_rates is None:
            self._arrival_rates = solve_traffic_equations(self._lam0, self._routing)
        return self._arrival_rates

    def utilizations(self) -> np.ndarray:
        """Per-station ``rho_i = lambda_i / mu_i``."""
        return self.arrival_rates() / self._mu

    def is_stable(self) -> bool:
        """Whether every station satisfies ``rho_i < 1``."""
        return bool(np.all(self.utilizations() < 1.0))

    def solve(self) -> JacksonSolution:
        """Solve for the steady state of every station.

        Raises
        ------
        UnstableQueueError
            If any station has ``rho >= 1``.
        """
        rates = self.arrival_rates()
        metrics = []
        for i in range(self.num_stations):
            queue = MM1Queue(arrival_rate=float(rates[i]), service_rate=float(self._mu[i]))
            if not queue.is_stable:
                raise UnstableQueueError(
                    f"station {i} is unstable: lambda={rates[i]:.6g} >= "
                    f"mu={self._mu[i]:.6g}"
                )
            metrics.append(
                JacksonNodeMetrics(
                    index=i,
                    arrival_rate=queue.arrival_rate,
                    service_rate=queue.service_rate,
                    utilization=queue.rho,
                    mean_number_in_system=queue.mean_number_in_system,
                    mean_response_time=queue.mean_response_time,
                    mean_waiting_time=queue.mean_waiting_time,
                )
            )
        return JacksonSolution(
            node_metrics=metrics,
            total_external_rate=float(self._lam0.sum()),
        )


@dataclass(frozen=True)
class ChainFeedbackModel:
    """The paper's Fig. 3 model: a VNF chain with end-to-end loss feedback.

    Packets enter at external rate ``lambda0``, traverse the chain of
    service rates ``mu_1 .. mu_n`` in order, and are delivered correctly
    with probability ``P``; otherwise the destination NACKs and the packet
    re-enters at the head of the chain.  At steady state every VNF sees the
    same equivalent rate ``lambda = lambda0 / P`` (Burke), so

        ``E[N_i] = lambda0 / (P mu_i - lambda0)``
        ``E[T_i] = 1 / (P mu_i - lambda0)``
        ``E[T]   = sum_i E[T_i]``
    """

    external_rate: float
    service_rates: Sequence[float]
    delivery_probability: float = 1.0
    _rates: tuple = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        if self.external_rate < 0.0:
            raise ValidationError(
                f"external rate must be non-negative, got {self.external_rate!r}"
            )
        validate_delivery_probability(self.delivery_probability)
        rates = tuple(float(mu) for mu in self.service_rates)
        if not rates:
            raise ValidationError("chain must contain at least one VNF")
        if any(mu <= 0.0 for mu in rates):
            raise ValidationError("all service rates must be positive")
        object.__setattr__(self, "_rates", rates)

    @property
    def equivalent_rate(self) -> float:
        """The per-VNF equivalent arrival rate ``lambda = lambda0 / P``."""
        return self.external_rate / self.delivery_probability

    def is_stable(self) -> bool:
        """Whether every VNF on the chain satisfies ``lambda < mu_i``."""
        lam = self.equivalent_rate
        return all(lam < mu for mu in self._rates)

    def _require_stable(self) -> None:
        if not self.is_stable():
            raise UnstableQueueError(
                f"chain is unstable: equivalent rate {self.equivalent_rate:.6g} "
                f"exceeds the slowest service rate {min(self._rates):.6g}"
            )

    def mean_number_at(self, i: int) -> float:
        """``E[N_i] = lambda0 / (P mu_i - lambda0)`` for the i-th VNF (0-based)."""
        self._require_stable()
        mu = self._rates[i]
        return self.external_rate / (
            self.delivery_probability * mu - self.external_rate
        )

    def mean_response_time_at(self, i: int) -> float:
        """``E[T_i] = 1 / (P mu_i - lambda0)`` for the i-th VNF (0-based)."""
        self._require_stable()
        mu = self._rates[i]
        return 1.0 / (self.delivery_probability * mu - self.external_rate)

    def total_response_time(self) -> float:
        """End-to-end chain latency per delivered packet, ``sum_i E[T_i]``."""
        return sum(
            self.mean_response_time_at(i) for i in range(len(self._rates))
        )

    def to_jackson_network(self) -> OpenJacksonNetwork:
        """Build the equivalent explicit Jackson network (for validation).

        The chain becomes ``n`` stations in series; the last station routes
        back to the first with probability ``1 - P`` (the retransmission
        loop) and leaves the network with probability ``P``.
        """
        n = len(self._rates)
        routing = np.zeros((n, n))
        for i in range(n - 1):
            routing[i, i + 1] = 1.0
        routing[n - 1, 0] = 1.0 - self.delivery_probability
        external = np.zeros(n)
        external[0] = self.external_rate
        return OpenJacksonNetwork(
            service_rates=self._rates,
            routing_matrix=routing,
            external_rates=external,
        )
