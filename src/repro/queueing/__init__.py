"""Queueing-theoretic substrate: M/M/1, M/M/c and open Jackson networks.

This package supplies the closed-form analytics the paper builds on
(Section III-B):

* :mod:`repro.queueing.mm1` — single-server Markovian queues, the model of
  one VNF service instance.
* :mod:`repro.queueing.mmc` — multi-server queues (an extension used by the
  ablation studies; the paper models each instance as its own M/M/1).
* :mod:`repro.queueing.feedback` — loss-feedback effective arrival rates:
  a request whose packets are delivered correctly with probability ``P``
  contributes an effective Poisson rate ``lambda / P`` (Burke's theorem at
  steady state).
* :mod:`repro.queueing.kleinrock` — Kleinrock's independence approximation
  for merging several request flows into one instance-level stream.
* :mod:`repro.queueing.jackson` — an open Jackson network solver over an
  arbitrary routing matrix, plus the chain-structured convenience used to
  model a single VNF chain with a retransmission feedback loop.
* :mod:`repro.queueing.littles_law` — Little's-law helpers shared by the
  other modules.
"""

from repro.queueing.feedback import effective_arrival_rate, merged_effective_rate
from repro.queueing.jackson import (
    ChainFeedbackModel,
    JacksonNodeMetrics,
    JacksonSolution,
    OpenJacksonNetwork,
)
from repro.queueing.kleinrock import merge_flows, split_flow
from repro.queueing.littles_law import (
    mean_number_in_system,
    mean_response_time,
    utilization,
)
from repro.queueing.hypoexponential import HypoexponentialLatency
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import (
    MM1Queue,
    mm1_mean_numbers_in_system,
    mm1_mean_response_times,
    mm1_utilizations,
)
from repro.queueing.mmc import MMCQueue

__all__ = [
    "MM1Queue",
    "mm1_utilizations",
    "mm1_mean_numbers_in_system",
    "mm1_mean_response_times",
    "MMCQueue",
    "MG1Queue",
    "HypoexponentialLatency",
    "OpenJacksonNetwork",
    "JacksonSolution",
    "JacksonNodeMetrics",
    "ChainFeedbackModel",
    "effective_arrival_rate",
    "merged_effective_rate",
    "merge_flows",
    "split_flow",
    "utilization",
    "mean_number_in_system",
    "mean_response_time",
]
