"""Kleinrock's independence approximation: merging and splitting flows.

Section III-B: "Based on Kleinrock's Approximation, we define lambda_i as
the equivalent total arrival rate at a service instance i":

    ``lambda_i = lambda_i^0 + sum_j lambda_j P_ji``

where ``lambda_i^0`` is the external flow into instance ``i`` and
``lambda_j P_ji`` are internal flows routed from instance ``j``.  Each
merged stream is then *treated as if Poissonian*, so each instance remains
an M/M/1 queue.

This module gives the two primitive operations — merging several flows
into one equivalent stream, and probabilistically splitting one stream
into several — plus the fixed-point traffic-equation solver used by
:class:`repro.queueing.jackson.OpenJacksonNetwork`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError


def merge_flows(rates: Sequence[float]) -> float:
    """Merge independent (approximately) Poisson flows into one stream.

    The merged rate is the sum of the component rates; by Kleinrock's
    independence approximation the merged stream is treated as Poisson.
    """
    total = 0.0
    for rate in rates:
        if rate < 0.0:
            raise ValidationError(f"flow rate must be non-negative, got {rate!r}")
        total += rate
    return total


def split_flow(rate: float, probabilities: Sequence[float]) -> list:
    """Split a Poisson stream into branches with the given probabilities.

    A Poisson stream of rate ``lambda`` thinned with probability ``p_i``
    yields independent Poisson streams of rate ``lambda p_i``.  The
    probabilities must be non-negative and sum to at most 1 (any remainder
    is the "leave the network" branch).
    """
    if rate < 0.0:
        raise ValidationError(f"flow rate must be non-negative, got {rate!r}")
    total_p = 0.0
    for p in probabilities:
        if p < 0.0:
            raise ValidationError(f"branch probability must be >= 0, got {p!r}")
        total_p += p
    if total_p > 1.0 + 1e-12:
        raise ValidationError(
            f"branch probabilities sum to {total_p!r} > 1"
        )
    return [rate * p for p in probabilities]


def solve_traffic_equations(
    external_rates: Sequence[float],
    routing_matrix: np.ndarray,
) -> np.ndarray:
    """Solve the open-network traffic equations ``lambda = lambda0 + R^T lambda``.

    Parameters
    ----------
    external_rates:
        Vector ``lambda0`` of external Poisson arrival rates, one per
        station.
    routing_matrix:
        Matrix ``R`` where ``R[j, i]`` is the probability a packet leaving
        station ``j`` is routed to station ``i``.  Row sums must be
        at most 1; the deficit is the probability of leaving the network.

    Returns
    -------
    numpy.ndarray
        The equivalent total arrival rates ``lambda`` at each station.

    Raises
    ------
    ValidationError
        If dimensions disagree, probabilities are invalid, or the network
        is not open (i.e. ``I - R^T`` is singular, meaning some traffic
        never leaves).
    """
    lam0 = np.asarray(external_rates, dtype=float)
    routing = np.asarray(routing_matrix, dtype=float)
    n = lam0.shape[0]
    if routing.shape != (n, n):
        raise ValidationError(
            f"routing matrix shape {routing.shape} does not match "
            f"{n} external rates"
        )
    if np.any(lam0 < 0.0):
        raise ValidationError("external arrival rates must be non-negative")
    if np.any(routing < -1e-12):
        raise ValidationError("routing probabilities must be non-negative")
    row_sums = routing.sum(axis=1)
    if np.any(row_sums > 1.0 + 1e-9):
        raise ValidationError(
            f"routing matrix row sums exceed 1 (max {row_sums.max():.6g}); "
            "the network would not be open"
        )
    system = np.eye(n) - routing.T
    try:
        rates = np.linalg.solve(system, lam0)
    except np.linalg.LinAlgError as exc:
        raise ValidationError(
            "traffic equations are singular: the routing matrix traps "
            "traffic in a closed loop, so the network is not open"
        ) from exc
    if np.any(rates < -1e-9):
        raise ValidationError(
            "traffic equations produced a negative rate; routing matrix "
            "is not a valid open-network routing"
        )
    return np.maximum(rates, 0.0)
