"""Little's-law and basic steady-state helpers for Markovian queues.

These small functions implement the identities used throughout
Section III-B of the paper:

* utilization            ``rho = Lambda / mu``                    (Eq. 9)
* mean number in system  ``N   = rho / (1 - rho)``                (Eq. 10)
* mean response time     ``W   = N / lambda_effective``           (Eq. 11)

They validate their inputs aggressively: the Jackson model only has a
steady state for ``rho < 1`` and silent division blow-ups would corrupt
every experiment built on top.
"""

from __future__ import annotations

from repro.exceptions import UnstableQueueError, ValidationError


def utilization(arrival_rate: float, service_rate: float) -> float:
    """Return the offered load ``rho = Lambda / mu`` of a single server.

    Parameters
    ----------
    arrival_rate:
        Equivalent total Poisson arrival rate ``Lambda`` at the server
        (packets per second).  Must be non-negative.
    service_rate:
        Exponential service rate ``mu`` (packets per second).  Must be
        strictly positive.
    """
    if service_rate <= 0.0:
        raise ValidationError(f"service rate must be positive, got {service_rate!r}")
    if arrival_rate < 0.0:
        raise ValidationError(f"arrival rate must be non-negative, got {arrival_rate!r}")
    return arrival_rate / service_rate


def require_stable(rho: float, *, context: str = "queue") -> None:
    """Raise :class:`UnstableQueueError` unless ``rho < 1``."""
    if rho >= 1.0:
        raise UnstableQueueError(
            f"{context} is unstable: utilization rho={rho:.6g} >= 1; "
            "admission control must reject load before steady-state "
            "metrics can be computed"
        )


def mean_number_in_system(arrival_rate: float, service_rate: float) -> float:
    """Mean number of packets in an M/M/1 system, ``N = rho/(1-rho)``.

    This is Eq. (10) of the paper, covering both the packet in service and
    the packets waiting in the buffer.
    """
    rho = utilization(arrival_rate, service_rate)
    require_stable(rho)
    return rho / (1.0 - rho)


def mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn (queueing + service) time, ``W = 1/(mu - Lambda)``.

    Little's law applied to :func:`mean_number_in_system`:
    ``W = N / Lambda = 1 / (mu - Lambda)``.
    """
    rho = utilization(arrival_rate, service_rate)
    require_stable(rho)
    return 1.0 / (service_rate - arrival_rate)


def mean_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Mean time spent waiting in the buffer (excluding service).

    ``Wq = W - 1/mu = rho / (mu - Lambda)``.
    """
    return mean_response_time(arrival_rate, service_rate) - 1.0 / service_rate


def mean_queue_length(arrival_rate: float, service_rate: float) -> float:
    """Mean number of packets waiting in the buffer (excluding service).

    ``Nq = N - rho = rho^2 / (1 - rho)``.
    """
    rho = utilization(arrival_rate, service_rate)
    require_stable(rho)
    return rho * rho / (1.0 - rho)
