"""Greedy (LPT) multi-way partitioning.

Sort values in decreasing order and assign each to the way with the
currently smallest sum.  This is the first solution found by Korf's
Complete Greedy Algorithm and the scheduling analogue of longest
processing time (LPT) list scheduling.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.partition.base import PartitionResult, validate_instance


def greedy_partition(values: Sequence[float], num_ways: int) -> PartitionResult:
    """Partition ``values`` into ``num_ways`` subsets with the LPT rule.

    Parameters
    ----------
    values:
        Non-negative numbers to partition (e.g. request arrival rates).
    num_ways:
        Number of subsets ``m >= 1`` (e.g. service instances).

    Returns
    -------
    PartitionResult
        ``iterations`` counts one unit per placed value.
    """
    validate_instance(values, num_ways)
    order = sorted(range(len(values)), key=lambda i: -values[i])
    subsets = [[] for _ in range(num_ways)]
    # Heap of (current sum, way index); ties resolved by way index for
    # determinism.
    heap = [(0.0, way) for way in range(num_ways)]
    heapq.heapify(heap)
    iterations = 0
    for idx in order:
        iterations += 1
        current, way = heapq.heappop(heap)
        subsets[way].append(idx)
        heapq.heappush(heap, (current + values[idx], way))
    return PartitionResult(
        subsets=subsets, values=list(values), iterations=iterations
    )
