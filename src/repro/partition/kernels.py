"""Array-native multi-way Karmarkar-Karp kernel (RCKK/CKK hot path).

:func:`kk_multiway_kernel` re-implements
:func:`repro.partition.karmarkar_karp.karmarkar_karp_multiway` on flat
numpy state, producing the *identical* partition (same subsets, same
within-subset index order, same iteration count) for every input:

* Partition values are flat float64 rows (one live row per heap slot) —
  a combine is ``a + b[::-1]`` (reverse alignment), a stable argsort of
  the negated row (the same descending stable order as the legacy
  ``sorted(key=-value)``) and a floor subtraction.  All float operations
  happen in the legacy order, so heads and heap keys are bit-identical.
* Provenance is a merge *tree* instead of tuple concatenation: each
  occupied cell points at a node that is either a leaf (one original
  index) or an internal pair ``(left, right)`` recording "left's indices
  then right's indices".  The final subsets materialize with one
  left-to-right traversal per way — exactly the order the legacy
  ``a_idx + b_idx`` concatenation produced, without the O(subset)
  copying per combine.
* The heap holds ``(-head, counter, slot)`` triples with the same
  insertion-counter tie-breaking as the legacy implementation, so the
  combine sequence is identical.

``tests/partition`` and ``tests/core/test_solver_kernel_parity.py`` pin
kernel-vs-legacy equality; ``benchmarks/bench_solvers.py`` tracks the
speedup.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Sequence, Tuple

import numpy as np

from repro.partition.base import PartitionResult, validate_instance


def _resolve_subset(
    root: int, node_left: List[int], node_right: List[int], num_leaves: int
) -> List[int]:
    """Collect a provenance tree's leaf indices in left-to-right order."""
    if root < 0:
        return []
    out: List[int] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node < num_leaves:
            out.append(node)
        else:
            internal = node - num_leaves
            # Push right first so left pops (and emits) first.
            stack.append(node_right[internal])
            stack.append(node_left[internal])
    return out


def kk_multiway_kernel(
    values: Sequence[float],
    num_ways: int,
    reverse_combine: bool = True,
) -> PartitionResult:
    """Multi-way KK differencing on flat array state.

    Drop-in replacement for
    :func:`~repro.partition.karmarkar_karp.karmarkar_karp_multiway`
    with byte-identical output; see the module docstring for the
    representation.  ``reverse_combine=True`` is the paper's RCKK rule,
    ``False`` the deliberately weaker forward-ablation rule.
    """
    validate_instance(values, num_ways)
    n = len(values)
    if n == 0:
        return PartitionResult(
            subsets=[[] for _ in range(num_ways)], values=[], iterations=0
        )
    if num_ways == 1:
        return PartitionResult(
            subsets=[list(range(n))], values=list(values), iterations=0
        )

    m = num_ways
    # Slot i < n holds the singleton (values[i], 0, ..., 0); a combine
    # frees two slots and writes one, so reusing slot ``a`` keeps the
    # live set at n rows.  Rows are rebound (not copied) per combine.
    seed_vals = np.zeros((n, m), dtype=np.float64)
    seed_vals[:, 0] = np.asarray(values, dtype=np.float64)
    seed_prov = np.full((n, m), -1, dtype=np.int64)
    seed_prov[:, 0] = np.arange(n)
    vals = list(seed_vals)
    prov = list(seed_prov)

    # Internal provenance nodes; node id ``n + j`` is pair j.
    node_left: List[int] = []
    node_right: List[int] = []

    counter = itertools.count()
    heap: List[Tuple[float, int, int]] = []
    for i in range(n):
        heapq.heappush(heap, (-seed_vals[i, 0], next(counter), i))

    iterations = 0
    while len(heap) > 1:
        iterations += 1
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        a_prov = prov[a]
        b_vals = vals[b][::-1] if reverse_combine else vals[b]
        b_prov = prov[b][::-1] if reverse_combine else prov[b]

        a_occ = a_prov >= 0
        merged = np.where(a_occ, a_prov, b_prov)
        pair_at = (a_occ & (b_prov >= 0)).nonzero()[0]
        if len(pair_at):
            base = n + len(node_left)
            node_left.extend(a_prov.take(pair_at).tolist())
            node_right.extend(b_prov.take(pair_at).tolist())
            merged[pair_at] = np.arange(base, base + len(pair_at))

        # Legacy normalized(): stable sort descending, subtract floor.
        combined = vals[a] + b_vals
        order = (-combined).argsort(kind="stable")
        combined = combined.take(order)
        combined -= combined[-1]
        vals[a] = combined
        prov[a] = merged.take(order)
        heapq.heappush(heap, (-combined[0], next(counter), a))

    _, _, final = heap[0]
    subsets = [
        _resolve_subset(int(root), node_left, node_right, n)
        for root in prov[final]
    ]
    result = PartitionResult(
        subsets=subsets, values=list(values), iterations=iterations
    )
    result.validate()
    return result
