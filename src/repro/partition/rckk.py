"""RCKK — Reverse Complete Karmarkar-Karp (Algorithm 2 of the paper).

RCKK partitions the arrival rates of the ``n`` requests requiring a VNF
into ``m = M_f`` ways (service instances):

1. Initialize one partition ``(lambda_r, 0, .., 0)`` per request, each
   position carrying its provenance request set ``s_i``.
2. Sort partitions in descending order of their leading value.
3. Repeatedly combine the two partitions with the largest leading values
   by adding position values *in reverse order* (largest way of one onto
   the smallest way of the other), merging the request sets accordingly;
   re-sort the combined tuple descending and normalize by subtracting the
   smallest position value; reinsert.
4. When a single partition remains, its position sets are the instance
   assignments: ``z_{r,i}^f = 1`` for every request ``r`` in ``s_i``.

The "reverse" combine is what makes a single pass effective: out of the
``m!`` ways to align two partitions, pairing sorted-descending with
sorted-ascending greedily minimizes the combined spread, so RCKK reaches
near-balanced partitions in ``O(n m log m)`` — the complexity the paper
derives in Section IV-D.

Both entry points run on the array-native kernel
(:func:`repro.partition.kernels.kk_multiway_kernel`), which produces the
identical partition to the tuple-based
:func:`~repro.partition.karmarkar_karp.karmarkar_karp_multiway`; the
latter stays as the legacy reference pinned by the kernel-parity tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.partition.base import PartitionResult
from repro.partition.kernels import kk_multiway_kernel


def rckk_partition(values: Sequence[float], num_ways: int) -> PartitionResult:
    """Partition ``values`` into ``num_ways`` subsets with RCKK.

    Parameters
    ----------
    values:
        Non-negative request arrival rates ``lambda_r``.
    num_ways:
        Number of service instances ``m = M_f``.

    Returns
    -------
    PartitionResult
        Index subsets per instance; ``iterations`` counts combine steps.
    """
    return kk_multiway_kernel(values, num_ways, reverse_combine=True)


def forward_ckk_partition(values: Sequence[float], num_ways: int) -> PartitionResult:
    """Ablation variant: combine in *forward* order (largest with largest).

    Used by the ablation benchmarks to quantify how much of RCKK's
    advantage comes specifically from the reverse alignment.
    """
    return kk_multiway_kernel(values, num_ways, reverse_combine=False)
