"""Multi-way number partitioning substrate.

The paper maps request scheduling to Multi-Way Number Partitioning
(MWNP): divide the arrival rates ``lambda_r`` of the requests requiring a
VNF into ``M_f`` subsets with sums as equal as possible (Section IV-B).
This package provides:

* :mod:`repro.partition.base` — problem/solution data model and balance
  metrics (makespan, spread, variance).
* :mod:`repro.partition.greedy` — LPT/greedy partitioning, the first leaf
  of Korf's Complete Greedy Algorithm.
* :mod:`repro.partition.cga` — Complete Greedy Algorithm with a
  configurable search budget (the paper's baseline).
* :mod:`repro.partition.karmarkar_karp` — KK set differencing: the
  two-way heuristic, the two-way *complete* CKK search, and the multi-way
  tuple differencing that RCKK builds on.
* :mod:`repro.partition.rckk` — the paper's Reverse Complete
  Karmarkar-Karp heuristic (Algorithm 2), with provenance tracking so the
  request sets ``s_i`` fall out of the final partition.
* :mod:`repro.partition.kernels` — the array-native multi-way KK kernel
  (flat numpy value rows + a provenance merge tree) that RCKK runs on,
  byte-identical to the tuple-based reference.
* :mod:`repro.partition.exact` — exhaustive/branch-and-bound optimum for
  small instances, used to measure heuristic gaps in tests.
"""

from repro.partition.base import PartitionResult, balance_metrics
from repro.partition.cga import complete_greedy_partition
from repro.partition.exact import exact_partition
from repro.partition.greedy import greedy_partition
from repro.partition.karmarkar_karp import (
    ckk_two_way,
    karmarkar_karp_multiway,
    karmarkar_karp_two_way,
)
from repro.partition.kernels import kk_multiway_kernel
from repro.partition.rckk import rckk_partition

__all__ = [
    "PartitionResult",
    "balance_metrics",
    "greedy_partition",
    "complete_greedy_partition",
    "karmarkar_karp_two_way",
    "karmarkar_karp_multiway",
    "kk_multiway_kernel",
    "ckk_two_way",
    "rckk_partition",
    "exact_partition",
]
