"""Data model and balance metrics for multi-way number partitioning.

A *partition* of values ``v_0 .. v_{n-1}`` into ``m`` ways is represented
by :class:`PartitionResult`: ``subsets[i]`` holds the original indices
assigned to way ``i``.  Keeping indices (not values) lets callers map ways
back to requests, which is exactly what scheduling needs for the
``z_{r,k}^f`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.exceptions import ValidationError


def validate_instance(values: Sequence[float], num_ways: int) -> None:
    """Check the raw MWNP instance is well formed."""
    if num_ways < 1:
        raise ValidationError(f"number of ways must be >= 1, got {num_ways!r}")
    for v in values:
        if v < 0.0:
            raise ValidationError(f"values must be non-negative, got {v!r}")


@dataclass
class PartitionResult:
    """An assignment of value indices to ``m`` ways.

    Attributes
    ----------
    subsets:
        ``subsets[i]`` lists the indices of the values assigned to way
        ``i``.  Every index in ``range(len(values))`` appears in exactly
        one subset.
    values:
        The original values, kept for metric computation.
    """

    subsets: List[List[int]]
    values: List[float]
    #: Search nodes / combine steps the algorithm spent (cost accounting).
    iterations: int = 0

    @property
    def num_ways(self) -> int:
        """Number of ways ``m``."""
        return len(self.subsets)

    @property
    def sums(self) -> List[float]:
        """Per-way sums ``S_i = sum of values in way i``."""
        return [sum(self.values[j] for j in subset) for subset in self.subsets]

    @property
    def makespan(self) -> float:
        """The largest way sum, ``max_i S_i`` (the classic MWNP objective)."""
        return max(self.sums) if self.subsets else 0.0

    @property
    def spread(self) -> float:
        """Difference between the largest and smallest way sums."""
        s = self.sums
        return (max(s) - min(s)) if s else 0.0

    def assignment(self) -> Dict[int, int]:
        """Map each value index to its way index."""
        out: Dict[int, int] = {}
        for way, subset in enumerate(self.subsets):
            for idx in subset:
                out[idx] = way
        return out

    def validate(self) -> None:
        """Check every index is assigned exactly once.

        Raises
        ------
        ValidationError
            On a missing, duplicated, or out-of-range index.
        """
        seen: Dict[int, int] = {}
        n = len(self.values)
        for subset in self.subsets:
            for idx in subset:
                if not 0 <= idx < n:
                    raise ValidationError(f"index {idx} out of range [0, {n})")
                seen[idx] = seen.get(idx, 0) + 1
        for idx in range(n):
            count = seen.get(idx, 0)
            if count != 1:
                raise ValidationError(
                    f"value index {idx} assigned {count} times, expected once"
                )


@dataclass(frozen=True)
class BalanceMetrics:
    """Summary statistics of how balanced a partition's way sums are."""

    makespan: float
    min_sum: float
    spread: float
    mean_sum: float
    variance: float

    @property
    def imbalance_ratio(self) -> float:
        """``makespan / mean`` — 1.0 for a perfectly balanced partition."""
        if self.mean_sum == 0.0:
            return 1.0
        return self.makespan / self.mean_sum


def balance_metrics(result: PartitionResult) -> BalanceMetrics:
    """Compute :class:`BalanceMetrics` for a partition result."""
    sums = result.sums
    if not sums:
        return BalanceMetrics(0.0, 0.0, 0.0, 0.0, 0.0)
    mean = sum(sums) / len(sums)
    variance = sum((s - mean) ** 2 for s in sums) / len(sums)
    return BalanceMetrics(
        makespan=max(sums),
        min_sum=min(sums),
        spread=max(sums) - min(sums),
        mean_sum=mean,
        variance=variance,
    )


@dataclass
class TuplePartition:
    """A normalized KK tuple with provenance sets (internal helper).

    ``entries[i] = (value, indices)`` with values sorted descending and the
    last value normalized to zero.  This is exactly the partition object
    Algorithm 2 of the paper manipulates: ``(lambda_r, 0, ..., 0)``
    initially, combined pairwise until one remains.
    """

    entries: List[tuple] = field(default_factory=list)

    @classmethod
    def singleton(cls, value: float, index: int, num_ways: int) -> "TuplePartition":
        """The initial partition ``(value, 0, .., 0)`` holding one index."""
        entries = [(value, (index,))]
        entries.extend((0.0, ()) for _ in range(num_ways - 1))
        return cls(entries=entries)

    @property
    def head(self) -> float:
        """The leading (largest) value — the sort key in Algorithm 2."""
        return self.entries[0][0]

    def normalized(self) -> "TuplePartition":
        """Sort descending and subtract the smallest value from all."""
        ordered = sorted(self.entries, key=lambda e: -e[0])
        floor = ordered[-1][0]
        return TuplePartition(
            entries=[(value - floor, indices) for value, indices in ordered]
        )
