"""Complete Greedy Algorithm (CGA) for multi-way number partitioning.

Korf's CGA [IJCAI'09] searches the tree in which each level assigns the
next-largest value to one of the ``m`` ways, visiting ways in increasing
current-sum order so the *first* leaf is exactly the greedy/LPT solution.
Run to exhaustion it is optimal; truncated it is an anytime heuristic.

The paper uses CGA as the request-scheduling baseline and reports it both
slower-converging and less balanced than RCKK at the scales evaluated
(Figs. 11-14), which corresponds to CGA operating under a bounded node
budget.  ``max_nodes`` makes the budget explicit; the default explores a
small multiple of the greedy path, matching the baseline's behaviour while
keeping worst-case runtime linear-ish.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ValidationError
from repro.partition.base import PartitionResult, validate_instance


def complete_greedy_partition(
    values: Sequence[float],
    num_ways: int,
    max_nodes: Optional[int] = None,
    presort: bool = True,
) -> PartitionResult:
    """Partition with CGA under a node budget.

    Parameters
    ----------
    values:
        Non-negative numbers to partition.
    num_ways:
        Number of subsets ``m >= 1``.
    max_nodes:
        Maximum search-tree nodes to expand.  ``None`` uses the default
        budget ``8 * n * m`` (a few greedy passes' worth of work);
        ``0`` or negative means *unlimited* — the search runs to
        optimality (exponential time; only sensible for small instances).
    presort:
        ``True`` (Korf's CGA) considers values in decreasing order, so
        the first leaf is the LPT solution.  ``False`` keeps the given
        (arrival) order — the behaviour of the online greedy baseline the
        paper's evaluation exhibits, whose imbalance does not vanish as
        ``n`` grows.

    Returns
    -------
    PartitionResult
        The best (minimum-makespan) partition found within budget;
        ``iterations`` reports nodes expanded.
    """
    validate_instance(values, num_ways)
    n = len(values)
    if max_nodes is None:
        max_nodes = 8 * max(1, n) * num_ways
    unlimited = max_nodes <= 0

    if presort:
        order = sorted(range(len(values)), key=lambda i: -values[i])
    else:
        order = list(range(len(values)))
    total = sum(values)
    perfect = total / num_ways

    best_subsets: Optional[List[List[int]]] = None
    best_makespan = float("inf")
    nodes = 0

    sums = [0.0] * num_ways
    subsets: List[List[int]] = [[] for _ in range(num_ways)]

    def search(depth: int) -> bool:
        """DFS; returns True when the node budget is exhausted."""
        nonlocal best_subsets, best_makespan, nodes
        nodes += 1
        if not unlimited and nodes > max_nodes:
            return True
        if depth == len(order):
            makespan = max(sums) if sums else 0.0
            if makespan < best_makespan:
                best_makespan = makespan
                best_subsets = [list(s) for s in subsets]
            return False
        idx = order[depth]
        value = values[idx]
        # Visit ways in increasing current-sum order; skip duplicate sums
        # (assigning to either of two equal-sum ways is symmetric).
        visited_sums = set()
        for way in sorted(range(num_ways), key=lambda w: sums[w]):
            if sums[way] in visited_sums:
                continue
            visited_sums.add(sums[way])
            # Prune: this branch cannot beat the incumbent.
            if sums[way] + value >= best_makespan:
                continue
            sums[way] += value
            subsets[way].append(idx)
            exhausted = search(depth + 1)
            subsets[way].pop()
            sums[way] -= value
            if exhausted:
                return True
            # Perfect partition found — nothing can be better.
            if best_makespan <= perfect + 1e-12:
                return True
        return False

    search(0)
    if best_subsets is None:
        # The budget was too small to even reach the first leaf; fall back
        # to the plain greedy assignment so callers always get an answer.
        from repro.partition.greedy import greedy_partition

        fallback = greedy_partition(values, num_ways)
        fallback.iterations += nodes
        return fallback
    result = PartitionResult(
        subsets=best_subsets, values=list(values), iterations=nodes
    )
    result.validate()
    return result


def optimal_partition_cga(values: Sequence[float], num_ways: int) -> PartitionResult:
    """CGA run to exhaustion — the optimal makespan partition.

    Exponential time; intended for instances of roughly ``n <= 20``.
    """
    if len(values) > 28:
        raise ValidationError(
            f"optimal CGA is exponential; refusing n={len(values)} > 28"
        )
    return complete_greedy_partition(values, num_ways, max_nodes=0)
