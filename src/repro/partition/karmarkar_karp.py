"""Karmarkar-Karp set differencing: two-way, complete two-way, multi-way.

The KK heuristic repeatedly replaces the two largest numbers by their
difference — committing to "these two end up in different subsets" without
deciding which.  The complete version (CKK) also branches on replacing
them by their *sum* ("same subset"), yielding an optimal anytime search.

The multi-way generalization represents each number as an ``m``-tuple
``(v, 0, .., 0)`` and combines the two tuples with the largest leading
values by adding them *in reverse order* (largest way of one with the
smallest way of the other), then renormalizes.  The paper's RCKK
(:mod:`repro.partition.rckk`) is exactly this one-pass multi-way
differencing with provenance tracking.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.partition.base import PartitionResult, TuplePartition, validate_instance


def karmarkar_karp_two_way(values: Sequence[float]) -> PartitionResult:
    """Two-way KK differencing with subset reconstruction.

    Returns the partition implied by the differencing tree; ``spread``
    equals the final residual difference.
    """
    validate_instance(values, 2)
    if not values:
        return PartitionResult(subsets=[[], []], values=[], iterations=0)
    # Heap entries: (-value, tiebreak, left_indices, right_indices), where
    # left holds indices on the "larger" side of this residual.
    counter = itertools.count()
    heap: List[Tuple[float, int, tuple, tuple]] = [
        (-v, next(counter), (i,), ()) for i, v in enumerate(values)
    ]
    heapq.heapify(heap)
    iterations = 0
    while len(heap) > 1:
        iterations += 1
        neg_a, _, a_left, a_right = heapq.heappop(heap)
        neg_b, _, b_left, b_right = heapq.heappop(heap)
        # Difference: the two residuals go to opposite sides.
        diff = (-neg_a) - (-neg_b)
        heapq.heappush(
            heap, (-diff, next(counter), a_left + b_right, a_right + b_left)
        )
    _, _, left, right = heap[0]
    result = PartitionResult(
        subsets=[list(left), list(right)],
        values=list(values),
        iterations=iterations,
    )
    result.validate()
    return result


def ckk_two_way(
    values: Sequence[float], max_nodes: Optional[int] = None
) -> PartitionResult:
    """Complete Karmarkar-Karp for two-way partitioning.

    Branch-and-bound over difference/sum decisions; run to exhaustion
    (``max_nodes=None`` or ``<= 0``) it returns an optimal partition.
    First leaf is exactly the KK solution, so it is a proper anytime
    algorithm under a node budget.
    """
    validate_instance(values, 2)
    if not values:
        return PartitionResult(subsets=[[], []], values=[], iterations=0)
    unlimited = max_nodes is None or max_nodes <= 0
    budget = max_nodes if not unlimited else 0

    best_spread = float("inf")
    best_sides: Optional[Tuple[tuple, tuple]] = None
    nodes = 0

    # State: sorted list of (value, left_indices, right_indices), descending.
    initial = sorted(
        ((v, (i,), ()) for i, v in enumerate(values)), key=lambda e: -e[0]
    )

    def search(entries: List[tuple]) -> bool:
        nonlocal best_spread, best_sides, nodes
        nodes += 1
        if not unlimited and nodes > budget:
            return True
        if len(entries) == 1:
            value, left, right = entries[0]
            if value < best_spread:
                best_spread = value
                best_sides = (left, right)
            return False
        first, second = entries[0], entries[1]
        rest = entries[2:]
        remaining_sum = first[0] + second[0] + sum(e[0] for e in rest)
        # Prune: the final difference is at least 2*largest - total.
        if 2.0 * first[0] - remaining_sum >= best_spread:
            # Only the "difference" child can reduce the leading value.
            pass
        # Child 1: difference (opposite sides).
        diff_entry = (
            first[0] - second[0],
            first[1] + second[2],
            first[2] + second[1],
        )
        child = sorted(rest + [diff_entry], key=lambda e: -e[0])
        if search(child):
            return True
        if best_spread <= 1e-12:
            return True
        # Child 2: sum (same side).
        sum_entry = (
            first[0] + second[0],
            first[1] + second[1],
            first[2] + second[2],
        )
        # Prune: putting both on one side only helps if that side's
        # eventual residual can still beat the incumbent.
        if sum_entry[0] - (remaining_sum - sum_entry[0]) < best_spread:
            child = sorted(rest + [sum_entry], key=lambda e: -e[0])
            if search(child):
                return True
        return False

    search(initial)
    if best_sides is None:
        # Budget exhausted before any leaf: fall back to the plain KK
        # heuristic so callers always get a valid anytime answer.
        fallback = karmarkar_karp_two_way(values)
        fallback.iterations += nodes
        return fallback
    left, right = best_sides
    result = PartitionResult(
        subsets=[list(left), list(right)],
        values=list(values),
        iterations=nodes,
    )
    result.validate()
    return result


def karmarkar_karp_multiway(
    values: Sequence[float],
    num_ways: int,
    reverse_combine: bool = True,
) -> PartitionResult:
    """Multi-way KK tuple differencing.

    Parameters
    ----------
    values:
        Non-negative numbers to partition.
    num_ways:
        Number of ways ``m``.
    reverse_combine:
        ``True`` (the standard rule and the paper's RCKK) pairs position
        ``i`` of one tuple with position ``m-1-i`` of the other — largest
        with smallest.  ``False`` pairs same-position entries (a
        deliberately weaker "forward" rule kept for the ablation study).

    Returns
    -------
    PartitionResult
        ``iterations`` counts combine steps (``n - 1``).
    """
    validate_instance(values, num_ways)
    n = len(values)
    if n == 0:
        return PartitionResult(
            subsets=[[] for _ in range(num_ways)], values=[], iterations=0
        )
    if num_ways == 1:
        return PartitionResult(
            subsets=[list(range(n))], values=list(values), iterations=0
        )

    counter = itertools.count()
    heap: List[Tuple[float, int, TuplePartition]] = []
    for i, v in enumerate(values):
        part = TuplePartition.singleton(v, i, num_ways)
        heapq.heappush(heap, (-part.head, next(counter), part))

    iterations = 0
    while len(heap) > 1:
        iterations += 1
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        combined_entries = []
        m = num_ways
        for i in range(m):
            j = (m - 1 - i) if reverse_combine else i
            a_val, a_idx = a.entries[i]
            b_val, b_idx = b.entries[j]
            combined_entries.append((a_val + b_val, a_idx + b_idx))
        combined = TuplePartition(entries=combined_entries).normalized()
        heapq.heappush(heap, (-combined.head, next(counter), combined))

    _, _, final = heap[0]
    subsets = [list(indices) for _, indices in final.entries]
    result = PartitionResult(
        subsets=subsets, values=list(values), iterations=iterations
    )
    result.validate()
    return result
