"""Exact multi-way partitioning for small instances.

Used by tests and optimality studies to measure heuristic gaps:
``heuristic_makespan / exact_makespan``.  Implemented as CGA run to
exhaustion, which is optimal because the search enumerates every
assignment modulo way-symmetry with only makespan-safe pruning.
"""

from __future__ import annotations

from typing import Sequence

from repro.partition.base import PartitionResult
from repro.partition.cga import optimal_partition_cga


def exact_partition(values: Sequence[float], num_ways: int) -> PartitionResult:
    """Return a minimum-makespan partition (exponential time, small n only).

    Raises
    ------
    ValidationError
        If the instance is too large (n > 28) to solve exactly.
    """
    return optimal_partition_cga(values, num_ways)
