"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the quickstart pipeline on a generated workload and print the
    evaluation report.
``experiments [figNN ...] [--paper] [--list] [--jobs N] [--seed S]``
    Run all registered experiments (or the named ones) and print the
    paper-style tables.  Delegates to ``repro.experiments.runall``.
``simulate``
    Run the packet-level simulator against the analytic model on a
    two-VNF chain and print the agreement.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import JointOptimizer, WorkloadGenerator

    gen = WorkloadGenerator(np.random.default_rng(args.seed))
    w = gen.workload(
        num_vnfs=args.vnfs, num_nodes=args.nodes, num_requests=args.requests
    )
    solution = JointOptimizer().optimize(w.vnfs, w.requests, w.capacities)
    report = solution.evaluate()
    print(f"workload: {args.vnfs} VNFs, {args.nodes} nodes, "
          f"{args.requests} requests (seed {args.seed})")
    print(f"  avg node utilization   {report.average_node_utilization:.1%}")
    print(f"  nodes in service       {report.nodes_in_service}")
    print(f"  avg response latency   {report.average_response_latency * 1e3:.3f} ms")
    print(f"  avg total latency      {report.average_total_latency * 1e3:.3f} ms")
    print(f"  job rejection rate     {report.rejection_rate:.1%}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import runall

    argv: List[str] = []
    if args.list:
        argv.append("--list")
    if args.paper:
        argv.append("--paper")
    if args.seed is not None:
        argv.extend(["--seed", str(args.seed)])
    argv.extend(["--jobs", str(args.jobs)])
    if args.figures:
        argv.extend(["--only", *args.figures])
    return runall.main(argv)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro import ChainSimulator, Request, ServiceChain, SimulationConfig, VNF
    from repro.queueing import ChainFeedbackModel

    mus = (args.mu1, args.mu2)
    model = ChainFeedbackModel(
        external_rate=args.rate,
        service_rates=mus,
        delivery_probability=args.p,
    )
    vnfs = [VNF(f"v{i}", 1.0, 1, mu) for i, mu in enumerate(mus)]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, args.rate, delivery_probability=args.p)
    sim = ChainSimulator(
        vnfs,
        [request],
        {("r0", f.name): 0 for f in vnfs},
        SimulationConfig(duration=args.duration, warmup=args.duration / 10,
                         seed=args.seed),
    )
    metrics = sim.run()
    analytic = model.total_response_time()
    measured = metrics.mean_end_to_end()
    print(f"chain: lambda0={args.rate} -> mu={mus} at P={args.p}")
    print(f"  analytic  E[T] = {analytic:.5f} s")
    print(f"  simulated E[T] = {measured:.5f} s "
          f"({metrics.total_delivered} deliveries)")
    print(f"  relative error  {abs(measured - analytic) / analytic:.2%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="joint optimization demo")
    demo.add_argument("--vnfs", type=int, default=10)
    demo.add_argument("--nodes", type=int, default=8)
    demo.add_argument("--requests", type=int, default=60)
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    experiments = sub.add_parser("experiments", help="run paper experiments")
    experiments.add_argument(
        "figures",
        nargs="*",
        help="experiment names (see --list); default: all",
    )
    experiments.add_argument("--paper", action="store_true",
                             help="paper-scale repetitions")
    experiments.add_argument("--list", action="store_true",
                             help="list registered experiments and exit")
    experiments.add_argument("--jobs", type=int, default=0,
                             help="worker processes (0 = auto, 1 = serial)")
    experiments.add_argument("--seed", type=int, default=None,
                             help="master seed for a reproducible run")
    experiments.set_defaults(func=_cmd_experiments)

    simulate = sub.add_parser("simulate", help="simulator vs analytics")
    simulate.add_argument("--rate", type=float, default=30.0)
    simulate.add_argument("--mu1", type=float, default=90.0)
    simulate.add_argument("--mu2", type=float, default=70.0)
    simulate.add_argument("--p", type=float, default=0.98)
    simulate.add_argument("--duration", type=float, default=500.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
