"""Lower bounds on the optimal number of bins.

Used by the optimality tests to sandwich heuristic results:
``lower_bound <= OPT <= heuristic``.  With heterogeneous finite bins the
classic bounds need a small twist: to pack total demand ``S`` we must
open at least enough of the *largest* bins to cover ``S``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.exceptions import ValidationError


def continuous_lower_bound(
    item_sizes: Sequence[float], bin_capacities: Sequence[float]
) -> int:
    """Greedy volume bound: fewest largest bins whose capacities cover demand.

    Any feasible packing uses a set of bins whose total capacity is at
    least the total item size; the cheapest such set (by count) takes bins
    in decreasing capacity order.
    """
    total = sum(item_sizes)
    if total < 0.0:
        raise ValidationError("item sizes must be non-negative")
    if total == 0.0:
        return 0
    remaining = total
    count = 0
    for cap in sorted(bin_capacities, reverse=True):
        count += 1
        remaining -= cap
        if remaining <= 1e-12:
            return count
    raise ValidationError(
        f"total item size {total:.6g} exceeds total bin capacity; "
        "no packing exists"
    )


def l2_lower_bound(
    item_sizes: Sequence[float], bin_capacity: float, threshold: float = 0.0
) -> int:
    """Martello-Toth L2-style bound for *uniform* bins of ``bin_capacity``.

    Items larger than ``bin_capacity - threshold`` each need a private
    bin; the rest contribute by volume.  Maximizing over thresholds (done
    by callers sweeping ``threshold``) tightens the bound; a single call
    gives a valid bound for its threshold.
    """
    if bin_capacity <= 0.0:
        raise ValidationError(f"bin capacity must be positive, got {bin_capacity!r}")
    if not 0.0 <= threshold <= bin_capacity / 2.0 + 1e-12:
        raise ValidationError(
            f"threshold must be in [0, capacity/2], got {threshold!r}"
        )
    big = [s for s in item_sizes if s > bin_capacity - threshold]
    medium = [s for s in item_sizes if threshold <= s <= bin_capacity - threshold]
    # Each big item occupies its own bin entirely (no medium item fits with it).
    bound = len(big)
    volume = sum(medium)
    if volume > 0.0:
        bound += max(0, math.ceil(volume / bin_capacity))
    return bound


def best_l2_lower_bound(item_sizes: Sequence[float], bin_capacity: float) -> int:
    """Maximize :func:`l2_lower_bound` over the thresholds worth checking.

    The bound only changes where an item's classification flips: at item
    sizes ``<= capacity/2`` (medium/ignored boundary), just above
    ``capacity - s`` for each size ``s > capacity/2`` (big boundary), and
    at ``capacity/2`` itself (the strongest big classifier).
    """
    half = bin_capacity / 2.0
    candidates: List[float] = [0.0, half]
    for s in set(item_sizes):
        if s <= half:
            candidates.append(s)
        else:
            flip = bin_capacity - s + 1e-9
            if flip <= half:
                candidates.append(flip)
    return max(l2_lower_bound(item_sizes, bin_capacity, t) for t in candidates)


def min_bins_possible(
    item_sizes: Iterable[float], bin_capacities: Sequence[float]
) -> int:
    """The stronger of the applicable lower bounds for this instance."""
    sizes = list(item_sizes)
    caps = list(bin_capacities)
    bound = continuous_lower_bound(sizes, caps)
    if caps and len(set(caps)) == 1:
        bound = max(bound, best_l2_lower_bound(sizes, caps[0]))
    return bound
