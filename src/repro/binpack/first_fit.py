"""First-fit and first-fit-decreasing packers over finite bin sets.

FFD is the paper's first baseline: scan bins in a fixed order, place each
item (sorted by decreasing size) into the first bin with room.  Unlike
BFDSU it keeps no Used/Spare distinction and makes a single deterministic
pass, which is why the paper reports it using exactly one "iteration"
(Fig. 10) but the most nodes in service (Fig. 8).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.binpack.base import (
    Bin,
    Item,
    PackingResult,
    check_feasible_sizes,
    sorted_decreasing,
)
from repro.exceptions import InfeasiblePlacementError


def first_fit(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Pack items in given order, each into the first bin that fits.

    Parameters
    ----------
    items:
        Items in the order they should be considered.
    bins:
        Bins in their fixed scan order; they are mutated in place.

    Raises
    ------
    InfeasiblePlacementError
        If some item fits in no bin's residual capacity.
    """
    item_list = list(items)
    check_feasible_sizes(item_list, bins)
    iterations = 0
    for item in item_list:
        placed = False
        for b in bins:
            iterations += 1
            if b.fits(item):
                b.add(item)
                placed = True
                break
        if not placed:
            raise InfeasiblePlacementError(
                f"first-fit could not place item {item.key!r} "
                f"(size {item.size:.6g}) in any bin"
            )
    return PackingResult(bins=bins, iterations=iterations)


def first_fit_decreasing(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """First-fit over items pre-sorted by decreasing size (classic FFD)."""
    return first_fit(sorted_decreasing(items), bins)
