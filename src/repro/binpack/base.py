"""Core bin-packing data model: items, bins and packing results.

Unlike the textbook Variable Sized Bin Packing problem — where every bin
size is available in unlimited supply — the VNF-CP problem supplies each
bin (computing node) exactly once, each with its own capacity.  The model
here therefore treats bins as distinct named objects with finite capacity
and tracks residual space per bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional

from repro.exceptions import InfeasiblePlacementError, ValidationError

#: Numeric slack used when comparing demands with residual capacities.
CAPACITY_EPS = 1e-9


@dataclass(frozen=True)
class Item:
    """An indivisible item to pack (a VNF's total demand, ``M_f * D_f``)."""

    key: Hashable
    size: float

    def __post_init__(self) -> None:
        if self.size < 0.0:
            raise ValidationError(f"item size must be non-negative, got {self.size!r}")


class Bin:
    """A single finite-capacity bin (a computing node).

    Tracks which items it holds and how much residual capacity remains.
    """

    def __init__(self, key: Hashable, capacity: float) -> None:
        if capacity < 0.0:
            raise ValidationError(f"bin capacity must be non-negative, got {capacity!r}")
        self.key = key
        self.capacity = float(capacity)
        self.items: List[Item] = []

    @property
    def used(self) -> float:
        """Total size of the items currently packed in this bin."""
        return sum(item.size for item in self.items)

    @property
    def residual(self) -> float:
        """Remaining capacity, ``capacity - used``."""
        return self.capacity - self.used

    @property
    def is_empty(self) -> bool:
        """Whether no item has been packed into this bin."""
        return not self.items

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use; 0.0 for a zero-capacity bin."""
        if self.capacity == 0.0:
            return 0.0
        return self.used / self.capacity

    def fits(self, item: Item) -> bool:
        """Whether ``item`` fits in the residual capacity."""
        return item.size <= self.residual + CAPACITY_EPS

    def add(self, item: Item) -> None:
        """Pack ``item``, raising if it does not fit."""
        if not self.fits(item):
            raise InfeasiblePlacementError(
                f"item {item.key!r} (size {item.size:.6g}) does not fit in bin "
                f"{self.key!r} (residual {self.residual:.6g})"
            )
        self.items.append(item)

    def remove(self, item: Item) -> None:
        """Unpack ``item`` (must be present)."""
        self.items.remove(item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Bin(key={self.key!r}, capacity={self.capacity:.6g}, "
            f"used={self.used:.6g}, items={len(self.items)})"
        )


@dataclass
class PackingResult:
    """The outcome of a packing run."""

    bins: List[Bin]
    #: Number of elementary algorithm iterations consumed (paper Fig. 10).
    iterations: int = 0
    assignment: Dict[Hashable, Hashable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.assignment:
            self.assignment = {
                item.key: b.key for b in self.bins for item in b.items
            }

    @property
    def used_bins(self) -> List[Bin]:
        """Bins holding at least one item (the nodes "in service")."""
        return [b for b in self.bins if not b.is_empty]

    @property
    def num_used_bins(self) -> int:
        """Count of non-empty bins (Eq. 14 objective)."""
        return len(self.used_bins)

    @property
    def average_utilization(self) -> float:
        """Mean utilization over *used* bins (Eq. 13 objective)."""
        used = self.used_bins
        if not used:
            return 0.0
        return sum(b.utilization for b in used) / len(used)

    @property
    def total_occupied_capacity(self) -> float:
        """Sum of the capacities of used bins ("resource occupation")."""
        return sum(b.capacity for b in self.used_bins)

    def bin_of(self, item_key: Hashable) -> Hashable:
        """Return the key of the bin holding ``item_key``."""
        try:
            return self.assignment[item_key]
        except KeyError:
            raise ValidationError(f"item {item_key!r} was not packed") from None

    def validate(self, items: Iterable[Item]) -> None:
        """Check that every item is packed exactly once within capacity.

        Raises
        ------
        ValidationError
            If an item is missing, duplicated, or any bin overflows.
        """
        packed: Dict[Hashable, int] = {}
        for b in self.bins:
            for item in b.items:
                packed[item.key] = packed.get(item.key, 0) + 1
            if b.used > b.capacity + CAPACITY_EPS:
                raise ValidationError(
                    f"bin {b.key!r} overflows: used {b.used:.6g} > "
                    f"capacity {b.capacity:.6g}"
                )
        for item in items:
            count = packed.get(item.key, 0)
            if count != 1:
                raise ValidationError(
                    f"item {item.key!r} packed {count} times, expected exactly once"
                )


def make_bins(capacities: Iterable[float]) -> List[Bin]:
    """Create anonymous bins ``0..n-1`` from a capacity sequence."""
    return [Bin(key=i, capacity=c) for i, c in enumerate(capacities)]


def make_items(sizes: Iterable[float]) -> List[Item]:
    """Create anonymous items ``0..n-1`` from a size sequence."""
    return [Item(key=i, size=s) for i, s in enumerate(sizes)]


def sorted_decreasing(items: Iterable[Item]) -> List[Item]:
    """Items sorted by size descending (ties broken by key repr for determinism)."""
    return sorted(items, key=lambda it: (-it.size, repr(it.key)))


def check_feasible_sizes(items: Iterable[Item], bins: Iterable[Bin]) -> None:
    """Fast necessary-condition check before running any packer.

    Raises :class:`InfeasiblePlacementError` if some item exceeds every
    bin's capacity or total demand exceeds total capacity.
    """
    bin_list = list(bins)
    item_list = list(items)
    if not bin_list and item_list:
        raise InfeasiblePlacementError("no bins available")
    max_cap = max((b.capacity for b in bin_list), default=0.0)
    total_cap = sum(b.capacity for b in bin_list)
    total_size = sum(it.size for it in item_list)
    for it in item_list:
        if it.size > max_cap + CAPACITY_EPS:
            raise InfeasiblePlacementError(
                f"item {it.key!r} (size {it.size:.6g}) exceeds the largest "
                f"bin capacity {max_cap:.6g}"
            )
    if total_size > total_cap + CAPACITY_EPS:
        raise InfeasiblePlacementError(
            f"total item size {total_size:.6g} exceeds total capacity "
            f"{total_cap:.6g}"
        )


def find_fitting(bins: List[Bin], item: Item) -> Optional[Bin]:
    """Return the first bin that fits ``item``, or ``None``."""
    for b in bins:
        if b.fits(item):
            return b
    return None
