"""Best-fit and best-fit-decreasing packers over finite bin sets.

Best-fit places each item into the *feasible bin with the least residual
capacity*, keeping bins as full as possible.  Deterministic BFD is the
non-randomized core of the paper's BFDSU algorithm and serves as an
ablation baseline (what BFDSU becomes when the weighted random draw always
picks the tightest node).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.binpack.base import (
    Bin,
    Item,
    PackingResult,
    check_feasible_sizes,
    sorted_decreasing,
)
from repro.exceptions import InfeasiblePlacementError


def _tightest_fitting(bins: List[Bin], item: Item) -> Optional[Bin]:
    """The feasible bin minimizing residual capacity, or ``None``."""
    best: Optional[Bin] = None
    for b in bins:
        if b.fits(item) and (best is None or b.residual < best.residual):
            best = b
    return best


def best_fit(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Pack items in given order, each into the tightest bin that fits."""
    item_list = list(items)
    check_feasible_sizes(item_list, bins)
    iterations = 0
    for item in item_list:
        iterations += len(bins)
        target = _tightest_fitting(bins, item)
        if target is None:
            raise InfeasiblePlacementError(
                f"best-fit could not place item {item.key!r} "
                f"(size {item.size:.6g}) in any bin"
            )
        target.add(item)
    return PackingResult(bins=bins, iterations=iterations)


def best_fit_decreasing(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Best-fit over items pre-sorted by decreasing size (classic BFD)."""
    return best_fit(sorted_decreasing(items), bins)
