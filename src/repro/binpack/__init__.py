"""Variable-sized bin-packing substrate.

The paper proves VNF chain placement NP-hard by reduction from bin
packing (Theorem 1), and its placement algorithms — BFDSU and the FFD
baseline — are bin-packing heuristics at heart.  This package provides the
shared vocabulary (:class:`Item`, :class:`Bin`, :class:`PackingResult`)
and the classic packers over *variable-sized, finitely-supplied* bins:

* first-fit / first-fit-decreasing
* best-fit / best-fit-decreasing
* worst-fit / worst-fit-decreasing
* next-fit

plus standard lower bounds on the optimal bin count used by the placement
optimality tests.
"""

from repro.binpack.base import Bin, Item, PackingResult
from repro.binpack.best_fit import best_fit, best_fit_decreasing
from repro.binpack.first_fit import first_fit, first_fit_decreasing
from repro.binpack.lower_bounds import continuous_lower_bound, l2_lower_bound
from repro.binpack.next_fit import next_fit
from repro.binpack.worst_fit import worst_fit, worst_fit_decreasing

__all__ = [
    "Item",
    "Bin",
    "PackingResult",
    "first_fit",
    "first_fit_decreasing",
    "best_fit",
    "best_fit_decreasing",
    "worst_fit",
    "worst_fit_decreasing",
    "next_fit",
    "continuous_lower_bound",
    "l2_lower_bound",
]
