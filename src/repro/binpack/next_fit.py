"""Next-fit packer over finite bin sets.

Next-fit keeps a single "open" bin and moves on (never returning) when an
item does not fit.  It is the weakest classic heuristic and anchors the
bottom of the placement-quality comparisons.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.binpack.base import Bin, Item, PackingResult, check_feasible_sizes
from repro.exceptions import InfeasiblePlacementError


def next_fit(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Pack items in given order with the next-fit rule.

    Because bins are finite and heterogeneous, next-fit can fail on
    instances other heuristics solve; callers should expect
    :class:`InfeasiblePlacementError` and treat it as the algorithm's
    answer, not a bug.
    """
    item_list = list(items)
    check_feasible_sizes(item_list, bins)
    iterations = 0
    open_index = 0
    for item in item_list:
        while open_index < len(bins):
            iterations += 1
            if bins[open_index].fits(item):
                bins[open_index].add(item)
                break
            open_index += 1
        else:
            raise InfeasiblePlacementError(
                f"next-fit ran out of bins at item {item.key!r} "
                f"(size {item.size:.6g})"
            )
    return PackingResult(bins=bins, iterations=iterations)
