"""Worst-fit and worst-fit-decreasing packers over finite bin sets.

Worst-fit places each item into the feasible bin with the *most* residual
capacity — the load-spreading strategy.  It deliberately works against the
consolidation objective (Eq. 13/14) and is included as a lower-anchor
baseline for the placement benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.binpack.base import (
    Bin,
    Item,
    PackingResult,
    check_feasible_sizes,
    sorted_decreasing,
)
from repro.exceptions import InfeasiblePlacementError


def _loosest_fitting(bins: List[Bin], item: Item) -> Optional[Bin]:
    """The feasible bin maximizing residual capacity, or ``None``."""
    best: Optional[Bin] = None
    for b in bins:
        if b.fits(item) and (best is None or b.residual > best.residual):
            best = b
    return best


def worst_fit(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Pack items in given order, each into the emptiest bin that fits."""
    item_list = list(items)
    check_feasible_sizes(item_list, bins)
    iterations = 0
    for item in item_list:
        iterations += len(bins)
        target = _loosest_fitting(bins, item)
        if target is None:
            raise InfeasiblePlacementError(
                f"worst-fit could not place item {item.key!r} "
                f"(size {item.size:.6g}) in any bin"
            )
        target.add(item)
    return PackingResult(bins=bins, iterations=iterations)


def worst_fit_decreasing(items: Iterable[Item], bins: List[Bin]) -> PackingResult:
    """Worst-fit over items pre-sorted by decreasing size."""
    return worst_fit(sorted_decreasing(items), bins)
