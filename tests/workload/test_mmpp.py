"""Unit tests for the MMPP burstiness substrate."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workload.mmpp import MMPP2, poisson_equivalent


@pytest.fixture
def bursty():
    # High 100 pps 1/3 of the time, low 10 pps 2/3 of the time.
    return MMPP2(
        rate_high=100.0,
        rate_low=10.0,
        switch_to_low=2.0,
        switch_to_high=1.0,
    )


class TestParameters:
    def test_stationary_fraction(self, bursty):
        assert bursty.stationary_high_fraction == pytest.approx(1.0 / 3.0)

    def test_mean_rate(self, bursty):
        assert bursty.mean_rate == pytest.approx(100.0 / 3.0 + 20.0 / 3.0)

    def test_burstiness_index(self, bursty):
        assert bursty.burstiness_index() == pytest.approx(100.0 / 40.0)

    def test_poisson_equivalent(self, bursty):
        assert poisson_equivalent(bursty) == bursty.mean_rate

    def test_degenerate_is_poisson(self):
        flat = MMPP2(50.0, 50.0, 1.0, 1.0)
        assert flat.burstiness_index() == pytest.approx(1.0)


class TestValidation:
    def test_rate_ordering(self):
        with pytest.raises(ValidationError):
            MMPP2(10.0, 20.0, 1.0, 1.0)

    def test_positive_switch_rates(self):
        with pytest.raises(ValidationError):
            MMPP2(10.0, 1.0, 0.0, 1.0)

    def test_positive_high_rate(self):
        with pytest.raises(ValidationError):
            MMPP2(0.0, 0.0, 1.0, 1.0)


class TestSampling:
    def test_within_horizon_and_sorted(self, bursty):
        times = bursty.sample_arrival_times(50.0, np.random.default_rng(0))
        assert np.all(times >= 0.0)
        assert np.all(times < 50.0)
        assert np.all(np.diff(times) > 0.0)

    def test_mean_rate_recovered(self, bursty):
        times = bursty.sample_arrival_times(2000.0, np.random.default_rng(1))
        empirical = len(times) / 2000.0
        assert empirical == pytest.approx(bursty.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self, bursty):
        from repro.workload.traces import poisson_arrival_times

        mmpp_times = bursty.sample_arrival_times(
            1000.0, np.random.default_rng(2)
        )
        poisson_times = poisson_arrival_times(
            bursty.mean_rate, 1000.0, np.random.default_rng(3)
        )
        mmpp_gaps = np.diff(mmpp_times)
        poisson_gaps = np.diff(poisson_times)
        mmpp_cv = mmpp_gaps.std() / mmpp_gaps.mean()
        poisson_cv = poisson_gaps.std() / poisson_gaps.mean()
        assert mmpp_cv > poisson_cv * 1.2

    def test_bad_horizon(self, bursty):
        with pytest.raises(ValidationError):
            bursty.sample_arrival_times(0.0)

    def test_deterministic_given_seed(self, bursty):
        a = bursty.sample_arrival_times(20.0, np.random.default_rng(4))
        b = bursty.sample_arrival_times(20.0, np.random.default_rng(4))
        assert np.array_equal(a, b)
