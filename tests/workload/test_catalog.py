"""Unit tests for the VNF catalog."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.vnf import VNFCategory
from repro.workload.catalog import (
    COMMON_SIX,
    VNF_CATALOG,
    catalog_by_category,
    spec_by_name,
)


class TestCatalogContents:
    def test_at_least_thirty_vnfs(self):
        # The paper cites a survey of 30+ commonly used VNFs.
        assert len(VNF_CATALOG) >= 30

    def test_unique_names(self):
        names = [s.name for s in VNF_CATALOG]
        assert len(set(names)) == len(names)

    def test_all_nine_categories_covered(self):
        covered = {s.category for s in VNF_CATALOG}
        assert covered == set(VNFCategory)

    def test_common_six_present(self):
        for name in COMMON_SIX:
            assert spec_by_name(name).name == name

    def test_common_six_matches_paper(self):
        # NAT, FW, IDS, LB, WAN Optimizer, Flow Monitor.
        assert set(COMMON_SIX) == {
            "nat",
            "firewall",
            "ids",
            "l4_load_balancer",
            "wan_optimizer",
            "flow_monitor",
        }

    def test_positive_parameters(self):
        for spec in VNF_CATALOG:
            assert spec.base_demand > 0.0
            assert spec.base_service_rate > 0.0

    def test_inspection_heavier_than_forwarding(self):
        # DPI is slower and more demanding than NAT.
        dpi = spec_by_name("dpi")
        nat = spec_by_name("nat")
        assert dpi.base_demand > nat.base_demand
        assert dpi.base_service_rate < nat.base_service_rate


class TestLookup:
    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            spec_by_name("warp_drive")

    def test_by_category(self):
        security = catalog_by_category(VNFCategory.SECURITY)
        assert all(s.category is VNFCategory.SECURITY for s in security)
        assert any(s.name == "firewall" for s in security)


class TestInstantiation:
    def test_defaults(self):
        vnf = spec_by_name("firewall").instantiate()
        assert vnf.num_instances == 1
        assert vnf.name == "firewall"

    def test_scaling(self):
        spec = spec_by_name("nat")
        vnf = spec.instantiate(num_instances=4, rate_scale=2.0)
        assert vnf.num_instances == 4
        assert vnf.service_rate == pytest.approx(
            spec.base_service_rate * 2.0
        )

    def test_bad_rate_scale(self):
        with pytest.raises(ValidationError):
            spec_by_name("nat").instantiate(rate_scale=0.0)
