"""Construction-parity and invariance tests for ``repro.workload.stream``.

The streamed columns must exactly equal ``ScenarioArrays.build`` over
the request objects the same scenario materializes — that pins the
stream path to the object path without requiring identical RNG
consumption (the stream path has its own documented draw layout).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.core.dtypes import LEAN_POLICY
from repro.exceptions import ConfigurationError
from repro.workload.stream import (
    ChainNamesView,
    SequentialIds,
    SequentialIndex,
    materialize_requests,
    rescale_to_stability,
    stream_scenario,
)

REQUEST_COLUMNS = (
    "lambda_r", "P_r", "eff_rate", "chain_req", "chain_vnf", "chain_ptr",
)


def small_scenario(seed=0, **kw):
    kw.setdefault("num_vnfs", 9)
    kw.setdefault("num_nodes", 15)
    kw.setdefault("num_requests", 120)
    return stream_scenario(rng=np.random.default_rng(seed), **kw)


class TestConstructionParity:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_columns_match_object_build(self, seed):
        scn = small_scenario(seed, delivery_probability=0.99)
        ref = ScenarioArrays.build(
            scn.vnfs, materialize_requests(scn), scn.capacities
        )
        for name in REQUEST_COLUMNS:
            got = getattr(scn.arrays, name)
            np.testing.assert_array_equal(
                got, getattr(ref, name), err_msg=name
            )
            assert got.dtype == getattr(ref, name).dtype, name
        np.testing.assert_array_equal(scn.arrays.A_v, ref.A_v)
        np.testing.assert_array_equal(scn.arrays.M_f, ref.M_f)
        assert list(scn.arrays.request_ids) == list(ref.request_ids)
        assert list(scn.arrays.chain_names) == list(ref.chain_names)
        assert dict(scn.arrays.request_index) == dict(ref.request_index)

    def test_chunk_size_invariance(self):
        base = small_scenario(3)
        for chunk in (1, 7, 64, 10_000):
            other = small_scenario(3, chunk_size=chunk)
            for name in REQUEST_COLUMNS:
                np.testing.assert_array_equal(
                    getattr(other.arrays, name),
                    getattr(base.arrays, name),
                    err_msg=f"{name} @ chunk={chunk}",
                )

    def test_lean_policy_parity(self):
        default = small_scenario(5)
        lean = small_scenario(5, dtypes=LEAN_POLICY)
        assert lean.arrays.index_dtype == np.int32
        assert lean.arrays.float_dtype == np.float32
        np.testing.assert_array_equal(
            lean.arrays.chain_vnf.astype(np.int64), default.arrays.chain_vnf
        )
        np.testing.assert_allclose(
            lean.arrays.lambda_r.astype(np.float64),
            default.arrays.lambda_r,
            rtol=1e-6,
        )
        # Lean columns equal the lean object build exactly, too.
        ref = ScenarioArrays.build(
            lean.vnfs, materialize_requests(lean), lean.capacities,
            dtypes=LEAN_POLICY,
        )
        np.testing.assert_array_equal(lean.arrays.lambda_r, ref.lambda_r)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_scenario(0, num_requests=0)
        with pytest.raises(ConfigurationError):
            small_scenario(0, chunk_size=0)
        with pytest.raises(ConfigurationError):
            small_scenario(0, rate_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            small_scenario(0, delivery_probability=0.0)


class TestLazyViews:
    def test_sequential_ids(self):
        ids = SequentialIds("r", 5)
        assert len(ids) == 5
        assert ids[0] == "r0"
        assert ids[-1] == "r4"
        assert ids[1:3] == ["r1", "r2"]
        assert list(ids) == ["r0", "r1", "r2", "r3", "r4"]
        with pytest.raises(IndexError):
            ids[5]

    def test_sequential_index(self):
        idx = SequentialIndex("r", 5)
        assert idx["r3"] == 3
        assert idx.get("r9") is None
        assert idx.get("r03") is None  # non-canonical: leading zero
        assert idx.get("x1") is None
        assert "r0" in idx and "r5" not in idx
        assert len(idx) == 5
        assert dict(idx) == {f"r{i}": i for i in range(5)}
        with pytest.raises(KeyError):
            idx["nope"]

    def test_chain_names_view(self):
        view = ChainNamesView(("fw", "nat"), np.array([1, 0, 1]))
        assert len(view) == 3
        assert view[0] == "nat"
        assert view[1:] == ["fw", "nat"]
        assert list(view) == ["nat", "fw", "nat"]

    def test_streamed_scenario_is_mutable_after_materialization(self):
        scn = small_scenario(2, num_requests=10)
        reqs = materialize_requests(scn)
        extra = type(reqs[0])(
            request_id="extra",
            chain=reqs[0].chain,
            arrival_rate=2.0,
        )
        row = scn.arrays.append_request(extra)
        assert row == 10
        assert scn.arrays.request_index["extra"] == 10
        assert scn.arrays.request_index["r3"] == 3


class TestStabilityRescale:
    def test_matches_object_reference(self):
        scn = small_scenario(4, num_requests=300)
        arr = scn.arrays
        # Object-path reference: worst pool utilization and per-request
        # rescale, exactly as benchmarks/bench_core.py does it.
        requests = materialize_requests(scn)
        load = {f.name: 0.0 for f in scn.vnfs}
        for r in requests:
            for name in r.chain.vnf_names:
                load[name] += r.effective_rate
        worst = max(
            load[f.name] / (f.num_instances * f.service_rate)
            for f in scn.vnfs
        )
        scale = rescale_to_stability(scn, target=0.7)
        if worst <= 0.7:
            assert scale == 1.0
        else:
            assert scale == pytest.approx(0.7 / worst, abs=0.0)
            expected = np.array(
                [r.arrival_rate * (0.7 / worst) for r in requests]
            )
            np.testing.assert_array_equal(arr.lambda_r, expected)
            np.testing.assert_array_equal(
                arr.eff_rate, arr.lambda_r / arr.P_r
            )
        assert scn.stability_scale == scale

    def test_noop_when_stable(self):
        scn = small_scenario(6, num_requests=5, num_nodes=8)
        rescale_to_stability(scn, target=0.999999)
        before = scn.arrays.lambda_r.copy()
        scale = rescale_to_stability(scn, target=0.999999)
        # Second pass is (at most) a tiny correction; a stable scenario
        # returns exactly 1.0 and leaves the columns untouched.
        if scale == 1.0:
            np.testing.assert_array_equal(scn.arrays.lambda_r, before)

    def test_rejects_bad_target(self):
        scn = small_scenario(1, num_requests=5)
        with pytest.raises(ConfigurationError):
            rescale_to_stability(scn, target=1.5)
