"""Unit tests for the per-figure experiment scenarios."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workload.scenarios import (
    PlacementScenario,
    SchedulingScenario,
    monte_carlo_problems,
)


class TestPlacementScenario:
    def test_build_feasible(self):
        problem = PlacementScenario(num_vnfs=10, num_nodes=8).build()
        problem.check_necessary_feasibility()
        assert len(problem.vnfs) == 10
        assert len(problem.capacities) == 8

    def test_demand_fraction(self):
        scenario = PlacementScenario(
            num_vnfs=10, num_nodes=8, demand_fraction=0.5
        )
        problem = scenario.build()
        fraction = problem.total_demand() / problem.total_capacity()
        # Clamping of oversized VNFs can only lower the fraction.
        assert fraction <= 0.5 + 1e-9
        assert fraction > 0.3

    def test_deterministic_per_repetition(self):
        s = PlacementScenario(num_vnfs=8, num_nodes=6, seed=99)
        a, b = s.build(3), s.build(3)
        assert {f.name: f.total_demand for f in a.vnfs} == {
            f.name: f.total_demand for f in b.vnfs
        }
        assert dict(a.capacities) == dict(b.capacities)

    def test_repetitions_differ(self):
        s = PlacementScenario(num_vnfs=8, num_nodes=6, seed=99)
        assert dict(s.build(0).capacities) != dict(s.build(1).capacities)

    def test_largest_vnf_fits_largest_node(self):
        problem = PlacementScenario(num_vnfs=15, num_nodes=10).build()
        max_cap = max(problem.capacities.values())
        for vnf in problem.vnfs:
            assert vnf.total_demand <= max_cap

    def test_chains_present(self):
        problem = PlacementScenario(num_vnfs=12, num_nodes=8).build()
        assert problem.chains


class TestSchedulingScenario:
    def test_build(self):
        problem = SchedulingScenario(num_requests=20, num_instances=4).build()
        assert problem.num_requests == 20
        assert problem.num_instances == 4

    def test_mu_scaling(self):
        scenario = SchedulingScenario(
            num_requests=50, num_instances=5, rho=0.8, seed=1
        )
        problem = scenario.build()
        total_raw = sum(r.arrival_rate for r in problem.requests)
        assert problem.vnf.service_rate == pytest.approx(
            total_raw / (5 * 0.8)
        )

    def test_fixed_service_rate_override(self):
        scenario = SchedulingScenario(
            num_requests=20, num_instances=4, service_rate=1234.0
        )
        assert scenario.build().vnf.service_rate == 1234.0

    def test_delivery_probability(self):
        problem = SchedulingScenario(
            num_requests=10, num_instances=2, delivery_probability=0.98
        ).build()
        assert all(
            r.delivery_probability == 0.98 for r in problem.requests
        )

    def test_rates_in_range(self):
        problem = SchedulingScenario(num_requests=30, num_instances=3).build()
        for r in problem.requests:
            assert 1.0 <= r.arrival_rate <= 100.0

    def test_deterministic_per_repetition(self):
        s = SchedulingScenario(num_requests=10, num_instances=2, seed=5)
        a, b = s.build(2), s.build(2)
        assert [r.arrival_rate for r in a.requests] == [
            r.arrival_rate for r in b.requests
        ]

    def test_fewer_requests_than_instances_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulingScenario(num_requests=3, num_instances=5)

    def test_bad_rho(self):
        with pytest.raises(ConfigurationError):
            SchedulingScenario(num_requests=10, num_instances=2, rho=0.0)


class TestMonteCarloProblems:
    def test_materializes_all(self):
        s = SchedulingScenario(num_requests=10, num_instances=2)
        problems = monte_carlo_problems(s, 5)
        assert len(problems) == 5

    def test_invalid_repetitions(self):
        s = SchedulingScenario(num_requests=10, num_instances=2)
        with pytest.raises(ConfigurationError):
            monte_carlo_problems(s, 0)
