"""Unit tests for the workload generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nfv.chain import MAX_CHAIN_LENGTH
from repro.workload.catalog import COMMON_SIX, VNF_CATALOG
from repro.workload.generator import WorkloadGenerator


@pytest.fixture
def gen():
    return WorkloadGenerator(np.random.default_rng(77))


class TestVnfs:
    def test_count(self, gen):
        assert len(gen.vnfs(10)) == 10

    def test_common_six_first(self, gen):
        names = [f.name for f in gen.vnfs(8)]
        assert names[:6] == list(COMMON_SIX)

    def test_without_common_six(self, gen):
        vnfs = gen.vnfs(3, include_common_six=False)
        assert len(vnfs) == 3

    def test_unique_names(self, gen):
        names = [f.name for f in gen.vnfs(30)]
        assert len(set(names)) == 30

    def test_replicas_beyond_catalog(self, gen):
        vnfs = gen.vnfs(len(VNF_CATALOG) + 3)
        assert len(vnfs) == len(VNF_CATALOG) + 3
        names = [f.name for f in vnfs]
        assert len(set(names)) == len(names)
        assert any("#" in n for n in names)

    def test_instance_range_respected(self, gen):
        for vnf in gen.vnfs(10, instance_range=(3, 5)):
            assert 3 <= vnf.num_instances <= 5

    def test_invalid_count(self, gen):
        with pytest.raises(ConfigurationError):
            gen.vnfs(0)

    def test_invalid_instance_range(self, gen):
        with pytest.raises(ConfigurationError):
            gen.vnfs(3, instance_range=(5, 2))


class TestChains:
    def test_count_and_length(self, gen):
        vnfs = gen.vnfs(10)
        chains = gen.chains(vnfs, 5)
        assert len(chains) == 5
        for chain in chains:
            assert 1 <= len(chain) <= MAX_CHAIN_LENGTH

    def test_chains_reference_given_vnfs(self, gen):
        vnfs = gen.vnfs(8)
        names = {f.name for f in vnfs}
        for chain in gen.chains(vnfs, 10):
            assert set(chain.vnf_names) <= names

    def test_short_vnf_list(self, gen):
        vnfs = gen.vnfs(2)
        for chain in gen.chains(vnfs, 5):
            assert len(chain) <= 2

    def test_invalid(self, gen):
        with pytest.raises(ConfigurationError):
            gen.chains([], 1)
        with pytest.raises(ConfigurationError):
            gen.chains(gen.vnfs(3), 0)


class TestRequests:
    def test_rates_in_range(self, gen):
        chains = gen.chains(gen.vnfs(6), 3)
        for r in gen.requests(chains, 50, rate_range=(1.0, 100.0)):
            assert 1.0 <= r.arrival_rate <= 100.0

    def test_delivery_probability_applied(self, gen):
        chains = gen.chains(gen.vnfs(6), 3)
        for r in gen.requests(chains, 10, delivery_probability=0.98):
            assert r.delivery_probability == 0.98

    def test_unique_ids(self, gen):
        chains = gen.chains(gen.vnfs(6), 3)
        ids = [r.request_id for r in gen.requests(chains, 40)]
        assert len(set(ids)) == 40

    def test_invalid(self, gen):
        with pytest.raises(ConfigurationError):
            gen.requests([], 5)
        with pytest.raises(ConfigurationError):
            gen.requests(gen.chains(gen.vnfs(3), 1), 0)


class TestCapacities:
    def test_range(self, gen):
        caps = gen.capacities(20, capacity_range=(1.0, 5000.0))
        assert len(caps) == 20
        for c in caps.values():
            assert 1.0 <= c <= 5000.0

    def test_fitting_capacities_feasible(self, gen):
        vnfs = gen.vnfs(10)
        caps = gen.capacities_fitting(5, vnfs, headroom=1.3)
        total = sum(caps.values())
        demand = sum(f.total_demand for f in vnfs)
        assert total >= demand
        biggest = max(f.total_demand for f in vnfs)
        assert all(c >= biggest for c in caps.values())

    def test_invalid_headroom(self, gen):
        with pytest.raises(ConfigurationError):
            gen.capacities_fitting(3, gen.vnfs(3), headroom=0.9)


class TestWholeWorkload:
    def test_end_to_end(self, gen):
        w = gen.workload(num_vnfs=8, num_nodes=5, num_requests=20)
        assert len(w.vnfs) == 8
        assert len(w.requests) == 20
        assert len(w.capacities) == 5
        assert w.total_capacity >= w.total_demand

    def test_reproducible(self):
        a = WorkloadGenerator(np.random.default_rng(5)).workload(6, 4, 10)
        b = WorkloadGenerator(np.random.default_rng(5)).workload(6, 4, 10)
        assert [f.name for f in a.vnfs] == [f.name for f in b.vnfs]
        assert a.capacities == b.capacities
        assert [r.arrival_rate for r in a.requests] == [
            r.arrival_rate for r in b.requests
        ]
