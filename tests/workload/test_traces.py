"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.workload.traces import (
    empirical_rate_from_trace,
    lognormal_interarrival_trace,
    poisson_arrival_times,
)


class TestPoissonTrace:
    def test_within_horizon(self):
        times = poisson_arrival_times(50.0, 10.0, np.random.default_rng(0))
        assert np.all(times >= 0.0)
        assert np.all(times < 10.0)

    def test_rate_recovered(self):
        times = poisson_arrival_times(100.0, 200.0, np.random.default_rng(1))
        assert empirical_rate_from_trace(times) == pytest.approx(100.0, rel=0.05)

    def test_sorted(self):
        times = poisson_arrival_times(20.0, 50.0, np.random.default_rng(2))
        assert np.all(np.diff(times) > 0.0)

    def test_exponential_gaps(self):
        times = poisson_arrival_times(50.0, 400.0, np.random.default_rng(3))
        gaps = np.diff(times)
        # Exponential: cv = std/mean ~ 1.
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            poisson_arrival_times(0.0, 1.0)
        with pytest.raises(ValidationError):
            poisson_arrival_times(1.0, 0.0)


class TestLognormalTrace:
    def test_mean_rate_matched(self):
        times = lognormal_interarrival_trace(
            50.0, 400.0, sigma=1.0, rng=np.random.default_rng(4)
        )
        assert empirical_rate_from_trace(times) == pytest.approx(50.0, rel=0.15)

    def test_heavier_tail_than_poisson(self):
        rng = np.random.default_rng(5)
        ln = lognormal_interarrival_trace(50.0, 400.0, sigma=1.5, rng=rng)
        po = poisson_arrival_times(50.0, 400.0, np.random.default_rng(6))
        ln_cv = np.diff(ln).std() / np.diff(ln).mean()
        po_cv = np.diff(po).std() / np.diff(po).mean()
        assert ln_cv > po_cv

    def test_invalid(self):
        with pytest.raises(ValidationError):
            lognormal_interarrival_trace(1.0, 1.0, sigma=0.0)


class TestEmpiricalRate:
    def test_exact_for_regular_trace(self):
        # 11 arrivals over 10 seconds: rate 1.
        times = np.arange(0.0, 10.5, 1.0)
        assert empirical_rate_from_trace(times) == pytest.approx(1.0)

    def test_too_few_arrivals(self):
        with pytest.raises(ValidationError):
            empirical_rate_from_trace(np.array([1.0]))

    def test_non_increasing_rejected(self):
        with pytest.raises(ValidationError):
            empirical_rate_from_trace(np.array([2.0, 2.0]))
