"""Unit tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestDemo:
    def test_runs_and_prints(self, capsys):
        assert main(["demo", "--vnfs", "6", "--nodes", "5",
                     "--requests", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "rejection" in out


class TestExperiments:
    def test_named_figure(self, capsys):
        assert main(["experiments", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "BFDSU" in out

    def test_unknown_figure_exits_with_valid_names(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        assert "fig05" in err  # the error lists the valid names

    def test_list_experiments(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "headline" in out


class TestSimulate:
    def test_agreement_printed(self, capsys):
        assert main([
            "simulate", "--rate", "20", "--mu1", "80", "--mu2", "60",
            "--p", "0.99", "--duration", "200", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "analytic" in out
        assert "relative error" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
