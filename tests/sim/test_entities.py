"""Unit tests for simulation servers and sources."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.entities import PoissonSource, SimPacket, SimServer


class TestSimServer:
    def _server(self, mu=10.0, seed=0):
        engine = SimulationEngine()
        departures = []
        server = SimServer(
            engine=engine,
            service_rate=mu,
            rng=np.random.default_rng(seed),
            on_departure=lambda p, s: departures.append((p, s)),
        )
        return engine, server, departures

    def test_serves_single_packet(self):
        engine, server, departures = self._server()
        server.enqueue(SimPacket(request_id="r0", created_at=0.0))
        engine.run()
        assert len(departures) == 1
        assert server.departures == 1
        assert server.queue_length == 0

    def test_fcfs_order(self):
        engine, server, departures = self._server()
        for i in range(3):
            server.enqueue(SimPacket(request_id=f"r{i}", created_at=0.0))
        engine.run()
        assert [p.request_id for p, _ in departures] == ["r0", "r1", "r2"]

    def test_busy_time_accumulates(self):
        engine, server, _ = self._server()
        server.enqueue(SimPacket(request_id="r0", created_at=0.0))
        final = engine.run()
        server.finalize(final)
        assert 0.0 < server.busy_time <= final + 1e-12

    def test_sojourn_includes_waiting(self):
        engine, server, departures = self._server()
        server.enqueue(SimPacket(request_id="a", created_at=0.0))
        server.enqueue(SimPacket(request_id="b", created_at=0.0))
        engine.run()
        # Second packet waited for the first: its sojourn is longer.
        assert departures[1][1] > departures[0][1] or departures[1][1] >= 0.0
        assert server.mean_sojourn() > 0.0

    def test_invalid_rate(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            SimServer(engine, 0.0, np.random.default_rng(0), lambda p, s: None)

    def test_utilization_bounded(self):
        engine, server, _ = self._server()
        for i in range(50):
            server.enqueue(SimPacket(request_id=f"r{i}", created_at=0.0))
        final = engine.run()
        server.finalize(final)
        assert 0.0 < server.measured_utilization(final) <= 1.0


class TestPoissonSource:
    def test_generates_at_rate(self):
        engine = SimulationEngine()
        packets = []
        source = PoissonSource(
            engine=engine,
            request_id="r0",
            rate=100.0,
            rng=np.random.default_rng(7),
            emit=packets.append,
        )
        source.start()
        engine.run(until=50.0)
        # 100 pps over 50 s -> ~5000 packets; allow 10% tolerance.
        assert 4500 <= len(packets) <= 5500
        assert source.generated == len(packets)

    def test_packets_carry_request_id_and_time(self):
        engine = SimulationEngine()
        packets = []
        PoissonSource(
            engine, "rx", 10.0, np.random.default_rng(1), packets.append
        ).start()
        engine.run(until=5.0)
        assert all(p.request_id == "rx" for p in packets)
        created = [p.created_at for p in packets]
        assert created == sorted(created)

    def test_invalid_rate(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            PoissonSource(engine, "r", 0.0, np.random.default_rng(0), lambda p: None)
