"""Column-native simulation backend: kernel exactness + distributional
parity with the analytic M/M/1 model and the trace backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.exceptions import SimulationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.kernels import schedule_columns
from repro.sim.kernels import (
    lindley_departure_times,
    segmented_lindley,
    segmented_maximum_accumulate,
)
from repro.sim.scale import simulate_columns
from repro.sim.simulator import SimulationConfig
from repro.sim.trace import run_trace_simulation
from repro.workload.stream import rescale_to_stability, stream_scenario


class TestSegmentedKernels:
    def test_segmented_cummax_exact(self):
        rng = np.random.default_rng(1)
        seg = np.sort(rng.integers(0, 40, size=3000))
        v = rng.normal(size=3000)
        got = segmented_maximum_accumulate(v, seg)
        for s in np.unique(seg):
            m = seg == s
            np.testing.assert_array_equal(
                got[m], np.maximum.accumulate(v[m]), err_msg=f"seg {s}"
            )

    def test_segmented_cummax_single_segment(self):
        v = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        got = segmented_maximum_accumulate(v, np.zeros(5, dtype=int))
        np.testing.assert_array_equal(got, np.maximum.accumulate(v))

    def test_segmented_lindley_matches_per_segment(self):
        rng = np.random.default_rng(2)
        seg = np.sort(rng.integers(0, 64, size=8000))
        t = rng.uniform(0.0, 50.0, size=8000)
        order = np.lexsort((t, seg))
        seg, A = seg[order], t[order]
        S = rng.exponential(0.05, size=8000)
        D = segmented_lindley(A, S, seg)
        for s in np.unique(seg):
            m = seg == s
            np.testing.assert_allclose(
                D[m], lindley_departure_times(A[m], S[m]),
                rtol=1e-9, err_msg=f"seg {s}",
            )

    def test_segmented_lindley_validation(self):
        with pytest.raises(SimulationError):
            segmented_lindley(
                np.zeros(3), np.zeros(2), np.zeros(3, dtype=int)
            )
        with pytest.raises(SimulationError):
            segmented_lindley(
                np.zeros(3), np.array([-1.0, 0.0, 0.0]),
                np.zeros(3, dtype=int),
            )
        assert segmented_lindley(
            np.empty(0), np.empty(0), np.empty(0, dtype=int)
        ).size == 0


def single_queue_scenario(lam=40.0, mu=100.0):
    vnf = VNF("fw", demand_per_instance=1.0, num_instances=1,
              service_rate=mu)
    chain = ServiceChain(["fw"])
    request = Request("r0", chain, lam)
    arrays = ScenarioArrays.build([vnf], [request], {"n0": 10.0})
    sched = schedule_columns(arrays, policy="least_loaded")
    return arrays, sched


class TestScaleBackend:
    def test_mm1_analytic_sojourn(self):
        # M/M/1 at rho = 0.4: W = 1 / (mu - lambda) = 1/60 s.
        arrays, sched = single_queue_scenario(lam=40.0, mu=100.0)
        metrics = simulate_columns(
            arrays, sched,
            SimulationConfig(duration=400.0, warmup=40.0, seed=3),
        )
        assert metrics.generated > 10_000
        assert metrics.total_delivered > 0
        assert metrics.mean_latency == pytest.approx(1.0 / 60.0, rel=0.10)
        # Utilization ~ rho.
        assert metrics.instance_utilization[0] == pytest.approx(0.4, abs=0.05)

    def test_throughput_matches_offered_load(self):
        arrays, sched = single_queue_scenario(lam=50.0, mu=200.0)
        metrics = simulate_columns(
            arrays, sched,
            SimulationConfig(duration=200.0, warmup=20.0, seed=5),
        )
        # Post-warmup deliveries over the full duration: ~lambda * 0.9.
        assert metrics.throughput == pytest.approx(
            50.0 * (200.0 - 20.0) / 200.0, rel=0.08
        )

    def test_aggregates_track_trace_backend(self):
        scn = stream_scenario(
            num_vnfs=6, num_nodes=8, num_requests=30,
            rng=np.random.default_rng(11), delivery_probability=0.97,
        )
        rescale_to_stability(scn, target=0.5)
        sched = schedule_columns(scn.arrays, policy="least_loaded")
        cfg = SimulationConfig(duration=60.0, warmup=6.0, seed=7)
        got = simulate_columns(scn.arrays, sched, cfg)

        from repro.workload.stream import materialize_requests

        requests = materialize_requests(scn)
        schedule = {}
        names = scn.arrays.vnf_names
        for r, f, k in zip(sched.req, sched.vnf, sched.k):
            schedule[
                (scn.arrays.request_ids[int(r)], names[int(f)])
            ] = int(k)
        ref = run_trace_simulation(scn.vnfs, requests, schedule, cfg)

        assert got.generated == pytest.approx(
            ref.generated, rel=0.05
        )
        ref_delivered = sum(ref.delivered.values())
        assert got.total_delivered == pytest.approx(ref_delivered, rel=0.05)
        ref_latencies = [
            x for latencies in ref.end_to_end.values() for x in latencies
        ]
        assert got.mean_latency == pytest.approx(
            float(np.mean(ref_latencies)), rel=0.15
        )

    def test_retransmission_and_nack_delay(self):
        arrays, sched = single_queue_scenario(lam=30.0, mu=150.0)
        # Force heavy loss so retransmissions occur.
        arrays.P_r[:] = 0.5
        arrays.eff_rate[:] = arrays.lambda_r / arrays.P_r
        metrics = simulate_columns(
            arrays, sched,
            SimulationConfig(
                duration=100.0, warmup=10.0, nack_delay=0.01, seed=9
            ),
        )
        assert metrics.retransmitted[0] > 0
        assert metrics.total_delivered > 0
        # NACK delay inflates end-to-end latency above the pure M/M/1
        # sojourn of the *winning* attempt.
        assert metrics.mean_latency > 1.0 / (150.0 - 60.0)

    def test_incomplete_schedule_rejected(self):
        arrays, sched = single_queue_scenario()
        import dataclasses

        empty = dataclasses.replace(
            sched,
            req=sched.req[:0], vnf=sched.vnf[:0],
            k=sched.k[:0], inst=sched.inst[:0],
        )
        with pytest.raises(SimulationError):
            simulate_columns(arrays, empty)

    def test_deterministic_per_seed(self):
        scn = stream_scenario(
            num_vnfs=5, num_nodes=6, num_requests=12,
            rng=np.random.default_rng(2),
        )
        rescale_to_stability(scn, target=0.5)
        sched = schedule_columns(scn.arrays)
        cfg = SimulationConfig(duration=20.0, warmup=2.0, seed=4)
        a = simulate_columns(scn.arrays, sched, cfg)
        b = simulate_columns(scn.arrays, sched, cfg)
        np.testing.assert_array_equal(a.delivered, b.delivered)
        np.testing.assert_array_equal(a.latency_sum, b.latency_sum)
        np.testing.assert_array_equal(
            a.instance_utilization, b.instance_utilization
        )
