"""Unit tests for the simulation metrics containers."""

import pytest

from repro.sim.metrics import InstanceStats, SimulationMetrics


@pytest.fixture
def metrics():
    return SimulationMetrics(
        duration=100.0,
        instances=[
            InstanceStats(
                key=("fw", 0),
                arrivals=500,
                departures=498,
                mean_sojourn=0.02,
                utilization=0.6,
            ),
            InstanceStats(
                key=("fw", 1),
                arrivals=300,
                departures=300,
                mean_sojourn=0.01,
                utilization=0.3,
            ),
        ],
        delivered={"r0": 400, "r1": 390},
        end_to_end={
            "r0": [0.01, 0.02, 0.03],
            "r1": [0.05, 0.06],
        },
        retransmitted={"r0": 4, "r1": 0},
        generated=810,
    )


class TestLookups:
    def test_instance_lookup(self, metrics):
        stats = metrics.instance("fw", 1)
        assert stats.utilization == 0.3

    def test_unknown_instance(self, metrics):
        with pytest.raises(KeyError):
            metrics.instance("ghost", 0)


class TestAggregates:
    def test_total_delivered(self, metrics):
        assert metrics.total_delivered == 790

    def test_all_latencies(self, metrics):
        assert sorted(metrics.all_latencies()) == [
            0.01, 0.02, 0.03, 0.05, 0.06,
        ]

    def test_mean_end_to_end(self, metrics):
        expected = (0.01 + 0.02 + 0.03 + 0.05 + 0.06) / 5
        assert metrics.mean_end_to_end() == pytest.approx(expected)

    def test_mean_end_to_end_empty(self):
        empty = SimulationMetrics(
            duration=1.0,
            instances=[],
            delivered={},
            end_to_end={},
            retransmitted={},
            generated=0,
        )
        assert empty.mean_end_to_end() == 0.0

    def test_per_request_summary(self, metrics):
        summary = metrics.end_to_end_summary("r0")
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.02)
        assert summary.minimum == 0.01
