"""The sharded-simulation determinism contract, pinned.

``simulate_columns(jobs=N)`` must merge to the byte-identical
:class:`~repro.sim.scale.ScaleSimMetrics` for every ``N`` — the whole
point of the shard layer is that worker count is a throughput knob,
never a realization knob.  These suites pin each leg of the contract
documented in :mod:`repro.sim.shard`: plan determinism, the stable
partition, merge-order invariance, and the serial fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seeding import DEFAULT_SEED
from repro.sim.scale import simulate_columns
from repro.sim.shard import (
    DEFAULT_NUM_SHARDS,
    ScaleShardPlan,
    _SerialShardExecutor,
    _ShardMeasure,
    merge_shard_measurements,
    open_shard_executor,
    partition_by_shard,
)
from repro.sim.simulator import SimulationConfig
from repro.exceptions import SimulationError, ValidationError
from repro.scheduling.kernels import schedule_columns
from repro.workload.stream import rescale_to_stability, stream_scenario


METRIC_FIELDS = (
    "generated",
    "delivered",
    "retransmitted",
    "latency_sum",
    "instance_arrivals",
    "instance_departures",
    "instance_mean_sojourn",
    "instance_utilization",
)


def build_case(seed, num_requests=250, num_vnfs=10, num_nodes=8):
    scn = stream_scenario(
        num_vnfs=num_vnfs,
        num_nodes=num_nodes,
        num_requests=num_requests,
        rng=np.random.default_rng(seed),
    )
    rescale_to_stability(scn, target=0.7)
    arrays = scn.arrays
    return arrays, schedule_columns(arrays)


def assert_metrics_identical(a, b, context=""):
    for field in METRIC_FIELDS:
        va, vb = getattr(a, field), getattr(b, field)
        if np.isscalar(va):
            assert va == vb, f"{context}{field}"
        else:
            np.testing.assert_array_equal(va, vb, err_msg=f"{context}{field}")


class TestShardPlan:
    def test_plan_is_deterministic(self):
        arrays, sched = build_case(DEFAULT_SEED)
        a = ScaleShardPlan.build(arrays, sched)
        b = ScaleShardPlan.build(arrays, sched)
        assert a.num_shards == b.num_shards
        np.testing.assert_array_equal(a.shard_of_inst, b.shard_of_inst)

    def test_plan_independent_of_jobs(self):
        # The plan (hence the RNG stream layout) is a function of
        # scenario + schedule only; jobs never enters it.
        arrays, sched = build_case(DEFAULT_SEED)
        plan = ScaleShardPlan.build(arrays, sched)
        assert plan.num_shards == min(DEFAULT_NUM_SHARDS, arrays.num_instances)
        assert plan.shard_of_inst.shape == (arrays.num_instances,)

    def test_plan_covers_every_instance(self):
        arrays, sched = build_case(11)
        plan = ScaleShardPlan.build(arrays, sched)
        assert plan.shard_of_inst.min() >= 0
        assert plan.shard_of_inst.max() < plan.num_shards
        # Snake dealing keeps shard sizes within one of each other.
        sizes = np.bincount(plan.shard_of_inst, minlength=plan.num_shards)
        assert sizes.max() - sizes.min() <= 1

    def test_plan_caps_at_instance_count(self):
        arrays, sched = build_case(5, num_requests=20, num_vnfs=2)
        plan = ScaleShardPlan.build(arrays, sched, num_shards=10_000)
        assert plan.num_shards <= arrays.num_instances

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValidationError):
            ScaleShardPlan(num_shards=0, shard_of_inst=np.zeros(1, np.int64))

    def test_foreign_plan_shape_rejected(self):
        arrays, sched = build_case(3)
        bad = ScaleShardPlan(
            num_shards=2,
            shard_of_inst=np.zeros(arrays.num_instances + 5, np.int64),
        )
        with pytest.raises(SimulationError):
            simulate_columns(
                arrays, sched, SimulationConfig(duration=0.5, warmup=0.0), plan=bad
            )


class TestPartition:
    def test_single_shard_identity(self):
        ids = np.zeros(7, dtype=np.int64)
        order, bounds = partition_by_shard(ids, 1)
        np.testing.assert_array_equal(order, np.arange(7))
        np.testing.assert_array_equal(bounds, [0, 7])

    def test_partition_is_stable(self):
        ids = np.asarray([2, 0, 1, 0, 2, 1, 0], dtype=np.int64)
        order, bounds = partition_by_shard(ids, 3)
        np.testing.assert_array_equal(ids[order], np.sort(ids))
        # Entries of shard 0 keep their original relative order.
        np.testing.assert_array_equal(order[bounds[0]:bounds[1]], [1, 3, 6])
        np.testing.assert_array_equal(order[bounds[2]:bounds[3]], [0, 4])


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 4, 7])
    def test_jobs_byte_identical_default_seed(self, jobs):
        arrays, sched = build_case(DEFAULT_SEED)
        cfg = SimulationConfig(duration=1.0, warmup=0.1, seed=DEFAULT_SEED)
        base = simulate_columns(arrays, sched, cfg, jobs=1)
        sharded = simulate_columns(arrays, sched, cfg, jobs=jobs)
        assert_metrics_identical(base, sharded, f"jobs={jobs}: ")

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_jobs_byte_identical_derived_seeds(self, seed):
        arrays, sched = build_case(DEFAULT_SEED + seed, num_requests=120)
        cfg = SimulationConfig(
            duration=0.8, warmup=0.05, seed=DEFAULT_SEED + seed
        )
        base = simulate_columns(arrays, sched, cfg, jobs=1)
        sharded = simulate_columns(arrays, sched, cfg, jobs=2)
        assert_metrics_identical(base, sharded, f"seed={seed}: ")

    def test_explicit_plan_respected_at_any_jobs(self):
        arrays, sched = build_case(DEFAULT_SEED, num_requests=100)
        plan = ScaleShardPlan.build(arrays, sched, num_shards=3)
        cfg = SimulationConfig(duration=0.8, warmup=0.0, seed=DEFAULT_SEED)
        base = simulate_columns(arrays, sched, cfg, jobs=1, plan=plan)
        sharded = simulate_columns(arrays, sched, cfg, jobs=2, plan=plan)
        assert_metrics_identical(base, sharded, "explicit plan: ")

    def test_spawn_start_method_safe(self):
        # Spawn-safe: either real spawned workers or (when the harness
        # cannot re-import __main__) the serial fallback — identical
        # result both ways.
        arrays, sched = build_case(DEFAULT_SEED, num_requests=80)
        cfg = SimulationConfig(duration=0.6, warmup=0.0, seed=DEFAULT_SEED)
        base = simulate_columns(arrays, sched, cfg, jobs=1)
        sharded = simulate_columns(
            arrays, sched, cfg, jobs=2, start_method="spawn"
        )
        assert_metrics_identical(base, sharded, "spawn: ")


class TestSerialFallback:
    def test_jobs_none_and_one_use_serial_executor(self):
        arrays, sched = build_case(7, num_requests=60)
        plan = ScaleShardPlan.build(arrays, sched)
        seqs = np.random.SeedSequence(0).spawn(2 * plan.num_shards)
        ex = open_shard_executor(
            arrays,
            plan,
            1.0,
            seqs[: plan.num_shards],
            seqs[plan.num_shards:],
            generated=100,
            jobs=None,
        )
        try:
            assert isinstance(ex, _SerialShardExecutor)
        finally:
            ex.close()

    def test_zero_generated_stays_serial(self):
        arrays, sched = build_case(7, num_requests=60)
        plan = ScaleShardPlan.build(arrays, sched)
        seqs = np.random.SeedSequence(0).spawn(2 * plan.num_shards)
        ex = open_shard_executor(
            arrays,
            plan,
            1.0,
            seqs[: plan.num_shards],
            seqs[plan.num_shards:],
            generated=0,
            jobs=4,
        )
        try:
            assert isinstance(ex, _SerialShardExecutor)
        finally:
            ex.close()

    def test_single_shard_plan_stays_serial(self):
        arrays, sched = build_case(7, num_requests=60)
        plan = ScaleShardPlan.build(arrays, sched, num_shards=1)
        seqs = np.random.SeedSequence(0).spawn(2)
        ex = open_shard_executor(
            arrays, plan, 1.0, seqs[:1], seqs[1:], generated=100, jobs=4
        )
        try:
            assert isinstance(ex, _SerialShardExecutor)
        finally:
            ex.close()


def measure_strategy(num_instances, generated):
    def build(draw_seed):
        rng = np.random.default_rng(draw_seed)
        count = int(rng.integers(0, generated + 1))
        pkt_idx = np.sort(
            rng.choice(generated, size=count, replace=False)
        ).astype(np.int64)
        return _ShardMeasure(
            pkt_idx=pkt_idx,
            pkt_sums=rng.random(count),
            arrivals=rng.integers(0, 50, num_instances),
            departures=rng.integers(0, 50, num_instances),
            sojourn_done=rng.random(num_instances),
            busy=rng.random(num_instances),
        )

    return build


class TestMergeOrderInvariance:
    @given(
        perm_seed=st.integers(0, 10_000),
        data_seed=st.integers(0, 10_000),
        num_shards=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_arrival_order_merges_identically(
        self, perm_seed, data_seed, num_shards
    ):
        # Workers answer in whatever order the scheduler lets them;
        # the reduction must not care.
        generated, num_instances = 37, 11
        build = measure_strategy(num_instances, generated)
        tagged = [
            (s, build(data_seed * 31 + s)) for s in range(num_shards)
        ]
        baseline = merge_shard_measurements(tagged, generated, num_instances)
        shuffled = list(tagged)
        np.random.default_rng(perm_seed).shuffle(shuffled)
        merged = merge_shard_measurements(shuffled, generated, num_instances)
        for a, b in zip(baseline, merged):
            np.testing.assert_array_equal(a, b)
