"""The trace backend: analytic convergence, parity with events, edges.

Three layers of evidence, mirroring docs/SIM_BACKENDS.md:

* the trace backend passes the same Jackson-convergence checks (same
  scenarios, same tolerances) as the event backend's
  ``test_sim_vs_analytic.py``;
* its end-to-end latency *distribution* matches the event backend's
  (two-sample KS statistic — the backends agree in distribution, not
  sample by sample);
* edge cases (idle instance, ``warmup == 0``, ``nack_delay > 0``) are
  asserted identically on both backends.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.jackson import ChainFeedbackModel
from repro.queueing.mm1 import MM1Queue
from repro.sim.simulator import BACKENDS, ChainSimulator, SimulationConfig

LONG = SimulationConfig(duration=2000.0, warmup=200.0, seed=123)


def _simulate(rate, mus, p=1.0, config=LONG, backend="trace"):
    vnfs = [VNF(f"v{i}", 1.0, 1, mu) for i, mu in enumerate(mus)]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, rate, delivery_probability=p)
    schedule = {("r0", f.name): 0 for f in vnfs}
    return ChainSimulator(vnfs, [request], schedule, config, backend=backend).run()


class TestAnalyticConvergence:
    """Same scenarios and tolerances as the event-backend suite."""

    def test_mm1_sojourn(self):
        metrics = _simulate(rate=40.0, mus=[100.0])
        analytic = MM1Queue(40.0, 100.0)
        assert metrics.instance("v0", 0).mean_sojourn == pytest.approx(
            analytic.mean_response_time, rel=0.08
        )

    def test_mm1_utilization(self):
        metrics = _simulate(rate=40.0, mus=[100.0])
        assert metrics.instance("v0", 0).utilization == pytest.approx(
            0.4, abs=0.03
        )

    def test_high_load_sojourn(self):
        metrics = _simulate(rate=80.0, mus=[100.0])
        analytic = MM1Queue(80.0, 100.0)
        assert metrics.instance("v0", 0).mean_sojourn == pytest.approx(
            analytic.mean_response_time, rel=0.20
        )

    def test_tandem_end_to_end_latency(self):
        metrics = _simulate(rate=30.0, mus=[90.0, 70.0])
        expected = 1.0 / (90.0 - 30.0) + 1.0 / (70.0 - 30.0)
        assert metrics.mean_end_to_end() == pytest.approx(expected, rel=0.10)

    def test_feedback_effective_utilization(self):
        p = 0.8
        metrics = _simulate(rate=30.0, mus=[100.0], p=p)
        assert metrics.instance("v0", 0).utilization == pytest.approx(
            30.0 / (p * 100.0), abs=0.04
        )

    def test_feedback_per_pass_sojourn(self):
        p = 0.9
        rate, mu = 30.0, 100.0
        metrics = _simulate(rate=rate, mus=[mu], p=p)
        assert metrics.instance("v0", 0).mean_sojourn == pytest.approx(
            1.0 / (mu - rate / p), rel=0.10
        )

    def test_chain_feedback_model_agreement(self):
        p = 0.9
        metrics = _simulate(rate=25.0, mus=[80.0, 60.0], p=p)
        model = ChainFeedbackModel(
            external_rate=25.0,
            service_rates=[80.0, 60.0],
            delivery_probability=p,
        )
        assert metrics.mean_end_to_end() == pytest.approx(
            model.total_response_time(), rel=0.12
        )


def _ks_statistic(a, b):
    """Two-sample Kolmogorov-Smirnov statistic, plain numpy."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def _ks_bound(n, m, safety=2.0):
    """alpha=0.05 two-sample KS critical value, times a safety factor."""
    return safety * 1.36 * np.sqrt((n + m) / (n * m))


class TestDistributionalParity:
    def test_mm1_end_to_end_distribution_matches_events(self):
        # Single station, no loss: the trace backend's replay is exact
        # in distribution, so both latency samples come from the same
        # stationary law.
        kwargs = dict(rate=40.0, mus=[100.0])
        ev = _simulate(backend="events", **kwargs).end_to_end["r0"]
        tr = _simulate(backend="trace", **kwargs).end_to_end["r0"]
        stat = _ks_statistic(ev, tr)
        assert stat < _ks_bound(len(ev), len(tr))

    def test_feedback_chain_distribution_close(self):
        # Tandem + loss feedback exercises the approximation layer;
        # allow a wider (but still tight) distributional margin.
        kwargs = dict(rate=25.0, mus=[80.0, 60.0], p=0.9)
        ev = _simulate(backend="events", **kwargs).end_to_end["r0"]
        tr = _simulate(backend="trace", **kwargs).end_to_end["r0"]
        stat = _ks_statistic(ev, tr)
        assert stat < _ks_bound(len(ev), len(tr), safety=4.0)


def _shared_scenario():
    """Two requests; VNF 'fw' has a second, never-scheduled instance."""
    vnf = VNF("fw", 1.0, 2, 200.0)
    chain = ServiceChain(["fw"])
    requests = [Request("a", chain, 30.0), Request("b", chain, 40.0)]
    schedule = {("a", "fw"): 0, ("b", "fw"): 0}
    return [vnf], requests, schedule


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCasesBothBackends:
    def test_zero_traffic_instance_reports_zeros(self, backend):
        vnfs, requests, schedule = _shared_scenario()
        metrics = ChainSimulator(
            vnfs, requests, schedule,
            SimulationConfig(duration=50.0, warmup=5.0, seed=17),
            backend=backend,
        ).run()
        idle = metrics.instance("fw", 1)
        assert idle.arrivals == 0
        assert idle.departures == 0
        assert idle.mean_sojourn == 0.0
        assert idle.utilization == 0.0
        assert metrics.instance("fw", 0).arrivals > 0

    def test_zero_warmup_counts_from_time_origin(self, backend):
        vnfs, requests, schedule = _shared_scenario()
        metrics = ChainSimulator(
            vnfs, requests, schedule,
            SimulationConfig(duration=50.0, warmup=0.0, seed=17),
            backend=backend,
        ).run()
        # With no warmup every generated packet is measurable; only
        # horizon truncation can hold deliveries below generation.
        assert 0 < metrics.total_delivered <= metrics.generated
        assert len(metrics.end_to_end["a"]) == metrics.delivered["a"]

    def test_nack_delay_inflates_latency(self, backend):
        vnfs = [VNF("v0", 1.0, 1, 100.0)]
        request = Request(
            "r0", ServiceChain(["v0"]), 30.0, delivery_probability=0.7
        )
        schedule = {("r0", "v0"): 0}

        def run(nack_delay):
            return ChainSimulator(
                vnfs, [request], schedule,
                SimulationConfig(
                    duration=300.0, warmup=30.0, seed=6, nack_delay=nack_delay
                ),
                backend=backend,
            ).run()

        assert run(0.5).mean_end_to_end() > run(0.0).mean_end_to_end()


class TestBackendPlumbing:
    def test_unknown_backend_rejected(self):
        vnfs, requests, schedule = _shared_scenario()
        with pytest.raises(ValidationError):
            ChainSimulator(vnfs, requests, schedule, backend="quantum")

    def test_trace_run_is_deterministic(self):
        vnfs, requests, schedule = _shared_scenario()
        cfg = SimulationConfig(duration=100.0, warmup=10.0, seed=42)
        runs = [
            ChainSimulator(
                vnfs, requests, schedule, cfg, backend="trace"
            ).run()
            for _ in range(2)
        ]
        assert runs[0].delivered == runs[1].delivered
        assert runs[0].end_to_end == runs[1].end_to_end
        assert [s.utilization for s in runs[0].instances] == [
            s.utilization for s in runs[1].instances
        ]

    def test_generated_counts_match_between_backends(self):
        # Same scenario on both backends: fresh arrivals are Poisson
        # with identical rate/horizon, so counts agree closely though
        # the streams differ.
        vnfs, requests, schedule = _shared_scenario()
        cfg = SimulationConfig(duration=200.0, warmup=20.0, seed=5)
        ev = ChainSimulator(
            vnfs, requests, schedule, cfg, backend="events"
        ).run()
        tr = ChainSimulator(
            vnfs, requests, schedule, cfg, backend="trace"
        ).run()
        assert tr.generated == pytest.approx(ev.generated, rel=0.10)
