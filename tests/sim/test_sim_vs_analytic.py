"""Model validation: the simulator converges to the Jackson closed forms.

These are the abl-jackson checks of DESIGN.md — the paper's analytic
model (Section III-B) and our packet-level simulator must agree within
Monte-Carlo tolerance.
"""

import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.jackson import ChainFeedbackModel
from repro.queueing.mm1 import MM1Queue
from repro.sim.simulator import ChainSimulator, SimulationConfig

LONG = SimulationConfig(duration=2000.0, warmup=200.0, seed=123)


def _simulate(rate, mus, p=1.0, config=LONG):
    vnfs = [VNF(f"v{i}", 1.0, 1, mu) for i, mu in enumerate(mus)]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, rate, delivery_probability=p)
    schedule = {("r0", f.name): 0 for f in vnfs}
    return ChainSimulator(vnfs, [request], schedule, config).run()


class TestSingleQueue:
    def test_mm1_sojourn(self):
        metrics = _simulate(rate=40.0, mus=[100.0])
        analytic = MM1Queue(40.0, 100.0)
        measured = metrics.instance("v0", 0).mean_sojourn
        assert measured == pytest.approx(
            analytic.mean_response_time, rel=0.08
        )

    def test_mm1_utilization(self):
        metrics = _simulate(rate=40.0, mus=[100.0])
        measured = metrics.instance("v0", 0).utilization
        assert measured == pytest.approx(0.4, abs=0.03)

    def test_high_load_sojourn(self):
        metrics = _simulate(rate=80.0, mus=[100.0])
        analytic = MM1Queue(80.0, 100.0)
        measured = metrics.instance("v0", 0).mean_sojourn
        assert measured == pytest.approx(
            analytic.mean_response_time, rel=0.20
        )


class TestTandemChain:
    def test_end_to_end_latency(self):
        metrics = _simulate(rate=30.0, mus=[90.0, 70.0])
        expected = 1.0 / (90.0 - 30.0) + 1.0 / (70.0 - 30.0)
        assert metrics.mean_end_to_end() == pytest.approx(expected, rel=0.10)

    def test_per_stage_sojourns(self):
        metrics = _simulate(rate=30.0, mus=[90.0, 70.0])
        assert metrics.instance("v0", 0).mean_sojourn == pytest.approx(
            1.0 / 60.0, rel=0.10
        )
        assert metrics.instance("v1", 0).mean_sojourn == pytest.approx(
            1.0 / 40.0, rel=0.10
        )


class TestLossFeedback:
    def test_effective_utilization(self):
        # With P the station load is lambda/(P mu).
        p = 0.8
        metrics = _simulate(rate=30.0, mus=[100.0], p=p)
        measured = metrics.instance("v0", 0).utilization
        assert measured == pytest.approx(30.0 / (p * 100.0), abs=0.04)

    def test_per_pass_sojourn_matches_paper_formula(self):
        # Per-pass W = 1/(mu - lambda/P); the paper's per-VNF E[T_i]
        # = W/P aggregates the 1/P passes.
        p = 0.9
        rate, mu = 30.0, 100.0
        metrics = _simulate(rate=rate, mus=[mu], p=p)
        per_pass = metrics.instance("v0", 0).mean_sojourn
        assert per_pass == pytest.approx(
            1.0 / (mu - rate / p), rel=0.10
        )

    def test_chain_model_agreement(self):
        p = 0.9
        metrics = _simulate(rate=25.0, mus=[80.0, 60.0], p=p)
        model = ChainFeedbackModel(
            external_rate=25.0,
            service_rates=[80.0, 60.0],
            delivery_probability=p,
        )
        # Simulated end-to-end includes all passes; analytic E[T] via
        # Little's law over external arrivals equals sum_i E[T_i].
        assert metrics.mean_end_to_end() == pytest.approx(
            model.total_response_time(), rel=0.12
        )
