"""Unit tests for the array-native FCFS kernels.

The Lindley kernel is pinned against a naive per-packet reference loop
on random traces — the same recurrence the event engine walks one
packet at a time.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.sim.kernels import (
    busy_time_within,
    fcfs_sojourn_times,
    frontier_delays,
    lindley_departure_times,
    merge_streams,
)


def _naive_departures(arrivals, services):
    """Reference per-packet FCFS recurrence (what the event loop does)."""
    departures = []
    free_at = 0.0
    for a, s in zip(arrivals, services):
        start = max(a, free_at)
        free_at = start + s
        departures.append(free_at)
    return np.asarray(departures)


class TestLindleyKernel:
    def test_matches_naive_loop_on_random_traces(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            n = int(rng.integers(1, 400))
            arrivals = np.sort(rng.exponential(0.5, size=n).cumsum())
            services = rng.exponential(0.3, size=n)
            np.testing.assert_allclose(
                lindley_departure_times(arrivals, services),
                _naive_departures(arrivals, services),
                rtol=1e-12,
            )

    def test_idle_server_departs_after_service(self):
        arrivals = np.array([0.0, 10.0, 20.0])
        services = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(
            lindley_departure_times(arrivals, services),
            [1.0, 12.0, 23.0],
        )

    def test_busy_server_queues(self):
        arrivals = np.array([0.0, 0.1, 0.2])
        services = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(
            lindley_departure_times(arrivals, services),
            [1.0, 2.0, 3.0],
        )

    def test_nonmonotone_availability_times_allowed(self):
        # Frontier-inflated availability times need not be sorted; the
        # kernel must still respect FCFS order of the given sequence.
        arrivals = np.array([1.0, 0.5])
        services = np.array([1.0, 1.0])
        np.testing.assert_allclose(
            lindley_departure_times(arrivals, services), [2.0, 3.0]
        )

    def test_empty(self):
        out = lindley_departure_times(
            np.empty(0), np.empty(0)
        )
        assert out.size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            lindley_departure_times(np.zeros(3), np.zeros(2))

    def test_negative_service_rejected(self):
        with pytest.raises(SimulationError):
            lindley_departure_times(np.zeros(2), np.array([1.0, -0.1]))


class TestFcfsSojournTimes:
    def test_matches_naive_sojourns(self):
        rng = np.random.default_rng(11)
        arrivals = np.sort(rng.exponential(1.0, size=200).cumsum())
        services = rng.exponential(0.5, size=200)
        expected = _naive_departures(arrivals, services) - arrivals
        # atol absorbs cumsum-vs-sequential float association on tiny
        # sojourns; rtol alone is too strict near zero.
        np.testing.assert_allclose(
            fcfs_sojourn_times(arrivals, services),
            expected,
            rtol=1e-12,
            atol=1e-9,
        )

    def test_horizon_drops_late_departures(self):
        arrivals = np.array([0.0, 1.0, 2.0])
        services = np.array([0.5, 0.5, 10.0])
        out = fcfs_sojourn_times(arrivals, services, horizon=5.0)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_unsorted_trace_rejected(self):
        with pytest.raises(SimulationError):
            fcfs_sojourn_times(np.array([1.0, 0.5]), np.array([0.1, 0.1]))


class TestMergeStreams:
    def test_merged_is_sorted_and_order_roundtrips(self):
        rng = np.random.default_rng(3)
        streams = [np.sort(rng.uniform(0, 10, size=n)) for n in (5, 0, 8)]
        merged, order = merge_streams(streams)
        assert np.all(np.diff(merged) >= 0)
        concat = np.concatenate(streams)
        np.testing.assert_allclose(concat[order], merged)
        # Scatter-back: results computed in merged order return home.
        out = np.empty_like(merged)
        out[order] = merged
        np.testing.assert_allclose(out, concat)

    def test_stable_for_ties(self):
        merged, order = merge_streams([np.array([1.0]), np.array([1.0])])
        assert list(order) == [0, 1]


class TestFrontierDelays:
    def test_no_history_means_no_wait(self):
        waits = frontier_delays(
            np.empty(0), np.empty(0), np.array([0.0, 1.0])
        )
        np.testing.assert_allclose(waits, [0.0, 0.0])

    def test_waits_behind_residual_backlog(self):
        # History: arrival at 0 departs at 5.  A packet arriving at 2
        # finds 3 units of backlog; one arriving at 6 finds none.
        waits = frontier_delays(
            np.array([0.0]), np.array([5.0]), np.array([2.0, 6.0])
        )
        np.testing.assert_allclose(waits, [3.0, 0.0])

    def test_frontier_is_running_max(self):
        # Out-of-order departures: the *latest* departure among earlier
        # arrivals is what blocks.
        waits = frontier_delays(
            np.array([0.0, 1.0]),
            np.array([10.0, 4.0]),
            np.array([2.0]),
        )
        np.testing.assert_allclose(waits, [8.0])


class TestBusyTimeWithin:
    def test_full_service_inside_horizon(self):
        departures = np.array([2.0, 5.0])
        services = np.array([1.0, 2.0])
        assert busy_time_within(departures, services, 10.0) == pytest.approx(3.0)

    def test_service_clipped_at_horizon(self):
        # Service runs [9, 12) against horizon 10: only 1s counts.
        assert busy_time_within(
            np.array([12.0]), np.array([3.0]), 10.0
        ) == pytest.approx(1.0)

    def test_service_entirely_past_horizon(self):
        assert busy_time_within(
            np.array([15.0]), np.array([2.0]), 10.0
        ) == pytest.approx(0.0)
