"""Unit tests for the event queue and simulation engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("first"))
        q.push(1.0, lambda: order.append("second"))
        q.pop().action()
        q.pop().action()
        assert order == ["first", "second"]

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_len(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2


class TestSimulationEngine:
    def test_clock_advances(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(1.0, lambda: times.append(engine.now))
        engine.schedule(2.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.0, 2.5]
        assert engine.now == 2.5

    def test_run_until_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=3.0)
        assert fired == [1]
        assert engine.now == 3.0

    def test_event_at_horizon_not_dispatched(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.run(until=3.0)
        assert fired == []

    def test_schedule_in(self):
        engine = SimulationEngine()
        times = []

        def chain():
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_in(1.0, chain)

        engine.schedule_in(1.0, chain)
        engine.run(until=10.0)
        assert times == [1.0, 2.0, 3.0]

    def test_events_spawned_during_run(self):
        engine = SimulationEngine()
        log = []
        engine.schedule(1.0, lambda: engine.schedule_in(0.5, lambda: log.append(engine.now)))
        engine.run()
        assert log == [1.5]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-1.0, lambda: None)

    def test_rounding_noise_near_now_clamped_not_rejected(self):
        # On long horizons float arithmetic produces times a few ULP
        # before `now`; the guard is relative, so these clamp to `now`.
        engine = SimulationEngine()
        engine.schedule(1e9, lambda: None)
        engine.run()
        fired = []
        engine.schedule(1e9 - 1e-5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1e9]

    def test_genuinely_past_time_still_rejected_on_long_horizon(self):
        engine = SimulationEngine()
        engine.schedule(1e9, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1e9 - 1.0, lambda: None)

    def test_dispatched_counter(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_dispatched == 3
