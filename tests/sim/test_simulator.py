"""Unit tests for the chain simulator."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.sim.simulator import ChainSimulator, SimulationConfig


def _setup(p=1.0, rate=20.0, mus=(100.0, 80.0)):
    vnfs = [
        VNF(f"vnf{i}", 1.0, 1, mu) for i, mu in enumerate(mus)
    ]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, rate, delivery_probability=p)
    schedule = {("r0", f.name): 0 for f in vnfs}
    return vnfs, [request], schedule


class TestConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_bad_duration(self):
        with pytest.raises(ValidationError):
            SimulationConfig(duration=0.0)

    def test_bad_warmup(self):
        with pytest.raises(ValidationError):
            SimulationConfig(duration=10.0, warmup=10.0)

    def test_bad_nack_delay(self):
        with pytest.raises(ValidationError):
            SimulationConfig(nack_delay=-1.0)


class TestValidation:
    def test_missing_schedule_entry(self):
        vnfs, requests, schedule = _setup()
        del schedule[("r0", "vnf1")]
        with pytest.raises(ValidationError):
            ChainSimulator(vnfs, requests, schedule)

    def test_unknown_vnf_in_chain(self):
        vnfs, requests, schedule = _setup()
        with pytest.raises(ValidationError):
            ChainSimulator(vnfs[:1], requests, schedule)

    def test_out_of_range_instance(self):
        vnfs, requests, schedule = _setup()
        schedule[("r0", "vnf0")] = 5
        with pytest.raises(ValidationError):
            ChainSimulator(vnfs, requests, schedule)


class TestLossFreeRun:
    def test_packets_flow_end_to_end(self):
        vnfs, requests, schedule = _setup()
        sim = ChainSimulator(
            vnfs, requests, schedule,
            SimulationConfig(duration=100.0, warmup=10.0, seed=1),
        )
        metrics = sim.run()
        assert metrics.total_delivered > 0
        assert metrics.generated >= metrics.total_delivered
        assert not any(metrics.retransmitted.values())

    def test_instance_stats_present(self):
        vnfs, requests, schedule = _setup()
        metrics = ChainSimulator(
            vnfs, requests, schedule,
            SimulationConfig(duration=50.0, warmup=5.0, seed=2),
        ).run()
        s0 = metrics.instance("vnf0", 0)
        assert s0.arrivals > 0
        assert 0.0 < s0.utilization < 1.0
        with pytest.raises(KeyError):
            metrics.instance("ghost", 0)

    def test_deterministic_given_seed(self):
        vnfs, requests, schedule = _setup()
        cfg = SimulationConfig(duration=30.0, warmup=0.0, seed=9)
        m1 = ChainSimulator(vnfs, requests, schedule, cfg).run()
        m2 = ChainSimulator(vnfs, requests, schedule, cfg).run()
        assert m1.total_delivered == m2.total_delivered
        assert m1.mean_end_to_end() == pytest.approx(m2.mean_end_to_end())


class TestLossAndRetransmission:
    def test_retransmissions_happen(self):
        vnfs, requests, schedule = _setup(p=0.8)
        metrics = ChainSimulator(
            vnfs, requests, schedule,
            SimulationConfig(duration=200.0, warmup=20.0, seed=3),
        ).run()
        assert metrics.retransmitted["r0"] > 0

    def test_loss_increases_server_load(self):
        clean = ChainSimulator(
            *_setup(p=1.0),
            SimulationConfig(duration=300.0, warmup=30.0, seed=4),
        ).run()
        lossy = ChainSimulator(
            *_setup(p=0.85),
            SimulationConfig(duration=300.0, warmup=30.0, seed=4),
        ).run()
        assert (
            lossy.instance("vnf0", 0).utilization
            > clean.instance("vnf0", 0).utilization
        )

    def test_retransmission_fraction_tracks_loss_rate(self):
        p = 0.9
        metrics = ChainSimulator(
            *_setup(p=p, rate=50.0),
            SimulationConfig(duration=400.0, warmup=40.0, seed=5),
        ).run()
        delivered = metrics.total_delivered
        retrans = metrics.retransmitted["r0"]
        # Fraction of packets needing >= 1 retransmission ~ (1 - p).
        assert retrans / delivered == pytest.approx(1.0 - p, abs=0.03)

    def test_nack_delay_slows_retransmission(self):
        fast = ChainSimulator(
            *_setup(p=0.7, rate=30.0),
            SimulationConfig(duration=200.0, warmup=20.0, seed=6),
        ).run()
        slow = ChainSimulator(
            *_setup(p=0.7, rate=30.0),
            SimulationConfig(
                duration=200.0, warmup=20.0, seed=6, nack_delay=0.5
            ),
        ).run()
        assert slow.mean_end_to_end() > fast.mean_end_to_end()


class TestSharedInstances:
    def test_two_requests_share_one_instance(self):
        vnf = VNF("fw", 1.0, 1, 200.0)
        chain = ServiceChain(["fw"])
        requests = [
            Request("a", chain, 30.0),
            Request("b", chain, 40.0),
        ]
        schedule = {("a", "fw"): 0, ("b", "fw"): 0}
        metrics = ChainSimulator(
            [vnf], requests, schedule,
            SimulationConfig(duration=100.0, warmup=10.0, seed=7),
        ).run()
        stats = metrics.instance("fw", 0)
        # Merged arrivals ~ 70 pps over the run horizon.
        assert stats.arrivals > 0
        assert metrics.delivered["a"] > 0
        assert metrics.delivered["b"] > 0

    def test_requests_on_distinct_instances_isolated(self):
        vnf = VNF("fw", 1.0, 2, 50.0)
        chain = ServiceChain(["fw"])
        requests = [
            Request("a", chain, 45.0),  # hot
            Request("b", chain, 5.0),   # cold
        ]
        schedule = {("a", "fw"): 0, ("b", "fw"): 1}
        metrics = ChainSimulator(
            [vnf], requests, schedule,
            SimulationConfig(duration=200.0, warmup=20.0, seed=8),
        ).run()
        hot = metrics.instance("fw", 0)
        cold = metrics.instance("fw", 1)
        assert hot.utilization > cold.utilization
        assert hot.mean_sojourn > cold.mean_sojourn
