"""Failure-injection: the simulator under sustained overload.

The analytics refuse unstable configurations; the simulator must instead
*behave* like an overloaded system — queue growth, utilization pinned at
1, throughput capped at ``mu`` — so the admission-control story can be
validated end to end.
"""

import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.sim.simulator import ChainSimulator, SimulationConfig


def _overloaded(rate=150.0, mu=100.0, duration=200.0, seed=0):
    vnf = VNF("fw", 1.0, 1, mu)
    chain = ServiceChain(["fw"])
    request = Request("r0", chain, rate)
    return ChainSimulator(
        [vnf],
        [request],
        {("r0", "fw"): 0},
        SimulationConfig(duration=duration, warmup=duration / 10, seed=seed),
    )


class TestOverloadBehaviour:
    def test_utilization_pinned_at_one(self):
        metrics = _overloaded().run()
        assert metrics.instance("fw", 0).utilization == pytest.approx(
            1.0, abs=0.02
        )

    def test_throughput_capped_at_mu(self):
        duration = 200.0
        metrics = _overloaded(duration=duration).run()
        departures = metrics.instance("fw", 0).departures
        assert departures / duration == pytest.approx(100.0, rel=0.05)

    def test_backlog_grows(self):
        short = _overloaded(duration=100.0, seed=1).run()
        long = _overloaded(duration=400.0, seed=1).run()
        short_backlog = (
            short.instance("fw", 0).arrivals
            - short.instance("fw", 0).departures
        )
        long_backlog = (
            long.instance("fw", 0).arrivals
            - long.instance("fw", 0).departures
        )
        # Excess arrivals accumulate ~ (lambda - mu) * t.
        assert long_backlog > short_backlog * 2

    def test_sojourn_grows_with_runtime(self):
        short = _overloaded(duration=100.0, seed=2).run()
        long = _overloaded(duration=400.0, seed=2).run()
        assert (
            long.instance("fw", 0).mean_sojourn
            > short.instance("fw", 0).mean_sojourn
        )

    def test_admission_would_have_prevented_it(self):
        """The admission layer rejects exactly the overload the
        simulator exhibits."""
        from repro.core.admission import apply_admission_control
        from repro.nfv.instance import ServiceInstance

        vnf = VNF("fw", 1.0, 1, 100.0)
        inst = ServiceInstance(vnf=vnf, index=0)
        inst.assign(Request("r0", ServiceChain(["fw"]), 150.0))
        outcome = apply_admission_control([inst])
        assert outcome.num_rejected == 1
