"""Unit + stress tests for the trace-replay source (MMPP burstiness)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.queueing.mm1 import MM1Queue
from repro.sim.engine import SimulationEngine
from repro.sim.entities import SimServer, TraceSource
from repro.workload.mmpp import MMPP2


class TestTraceSource:
    def test_replays_exact_times(self):
        engine = SimulationEngine()
        arrivals = []
        source = TraceSource(
            engine, "r0", [0.5, 1.0, 2.5], lambda p: arrivals.append(engine.now)
        )
        source.start()
        engine.run()
        assert arrivals == [0.5, 1.0, 2.5]
        assert source.generated == 3

    def test_unsorted_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            TraceSource(engine, "r0", [2.0, 1.0], lambda p: None)

    def test_negative_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            TraceSource(engine, "r0", [-1.0], lambda p: None)

    def test_empty_trace(self):
        engine = SimulationEngine()
        source = TraceSource(engine, "r0", [], lambda p: None)
        source.start()
        engine.run()
        assert source.generated == 0


class TestBurstinessStress:
    """MMPP/M/1 waits longer than the Poisson-equivalent M/M/1.

    This is the model-robustness boundary the paper's Jackson assumption
    lives on: with the same mean rate, burstier input means longer
    queues than the analytics predict.
    """

    def _measured_sojourn(self, arrival_times, mu, horizon, seed=0):
        engine = SimulationEngine()
        server = SimServer(
            engine=engine,
            service_rate=mu,
            rng=np.random.default_rng(seed),
            on_departure=lambda p, s: None,
        )
        TraceSource(engine, "r0", arrival_times, server.enqueue).start()
        engine.run(until=horizon)
        return server.mean_sojourn()

    def test_mmpp_waits_exceed_poisson_prediction(self):
        mmpp = MMPP2(
            rate_high=80.0, rate_low=5.0,
            switch_to_low=1.0, switch_to_high=1.0,
        )
        horizon = 2000.0
        trace = mmpp.sample_arrival_times(
            horizon, np.random.default_rng(10)
        )
        mu = mmpp.mean_rate / 0.7  # rho = 0.7 at the mean rate
        measured = self._measured_sojourn(trace, mu, horizon)
        analytic_poisson = MM1Queue(mmpp.mean_rate, mu).mean_response_time
        # Burstiness inflates the real sojourn well beyond the Poisson
        # closed form.
        assert measured > analytic_poisson * 1.3

    def test_poisson_trace_matches_prediction(self):
        from repro.workload.traces import poisson_arrival_times

        rate, horizon = 40.0, 2000.0
        trace = poisson_arrival_times(rate, horizon, np.random.default_rng(11))
        mu = rate / 0.7
        measured = self._measured_sojourn(trace, mu, horizon)
        analytic = MM1Queue(rate, mu).mean_response_time
        assert measured == pytest.approx(analytic, rel=0.15)
