"""Unit tests for the partitioning data model and metrics."""

import pytest

from repro.exceptions import ValidationError
from repro.partition.base import (
    BalanceMetrics,
    PartitionResult,
    TuplePartition,
    balance_metrics,
    validate_instance,
)


class TestValidateInstance:
    def test_valid(self):
        validate_instance([1.0, 2.0], 3)

    def test_zero_ways_rejected(self):
        with pytest.raises(ValidationError):
            validate_instance([1.0], 0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValidationError):
            validate_instance([1.0, -2.0], 2)


class TestPartitionResult:
    def _result(self):
        return PartitionResult(
            subsets=[[0, 2], [1]], values=[5.0, 7.0, 3.0]
        )

    def test_sums(self):
        assert self._result().sums == [pytest.approx(8.0), pytest.approx(7.0)]

    def test_makespan_and_spread(self):
        r = self._result()
        assert r.makespan == pytest.approx(8.0)
        assert r.spread == pytest.approx(1.0)

    def test_assignment(self):
        assert self._result().assignment() == {0: 0, 2: 0, 1: 1}

    def test_validate_passes(self):
        self._result().validate()

    def test_validate_missing_index(self):
        r = PartitionResult(subsets=[[0], []], values=[1.0, 2.0])
        with pytest.raises(ValidationError):
            r.validate()

    def test_validate_duplicate_index(self):
        r = PartitionResult(subsets=[[0], [0, 1]], values=[1.0, 2.0])
        with pytest.raises(ValidationError):
            r.validate()

    def test_validate_out_of_range(self):
        r = PartitionResult(subsets=[[0, 5]], values=[1.0])
        with pytest.raises(ValidationError):
            r.validate()

    def test_empty(self):
        r = PartitionResult(subsets=[], values=[])
        assert r.makespan == 0.0
        assert r.spread == 0.0


class TestBalanceMetrics:
    def test_perfectly_balanced(self):
        r = PartitionResult(subsets=[[0], [1]], values=[5.0, 5.0])
        m = balance_metrics(r)
        assert m.spread == 0.0
        assert m.variance == 0.0
        assert m.imbalance_ratio == pytest.approx(1.0)

    def test_imbalanced(self):
        r = PartitionResult(subsets=[[0, 1], []], values=[4.0, 6.0])
        m = balance_metrics(r)
        assert m.makespan == pytest.approx(10.0)
        assert m.min_sum == 0.0
        assert m.imbalance_ratio == pytest.approx(2.0)

    def test_empty(self):
        m = balance_metrics(PartitionResult(subsets=[], values=[]))
        assert m == BalanceMetrics(0.0, 0.0, 0.0, 0.0, 0.0)


class TestTuplePartition:
    def test_singleton_layout(self):
        p = TuplePartition.singleton(7.0, index=3, num_ways=4)
        assert p.head == 7.0
        assert p.entries[0] == (7.0, (3,))
        assert all(e == (0.0, ()) for e in p.entries[1:])

    def test_normalized_sorts_and_floors(self):
        p = TuplePartition(entries=[(2.0, (0,)), (5.0, (1,)), (3.0, (2,))])
        q = p.normalized()
        values = [v for v, _ in q.entries]
        assert values == [3.0, 1.0, 0.0]
        # Provenance follows the values through the sort.
        assert q.entries[0][1] == (1,)
        assert q.entries[2][1] == (0,)
