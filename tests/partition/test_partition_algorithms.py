"""Unit tests for greedy / CGA / KK / RCKK / exact partitioning."""

import pytest

from repro.exceptions import ValidationError
from repro.partition import (
    ckk_two_way,
    complete_greedy_partition,
    exact_partition,
    greedy_partition,
    karmarkar_karp_multiway,
    karmarkar_karp_two_way,
    rckk_partition,
)
from repro.partition.rckk import forward_ckk_partition

ALGOS_ANY_WAYS = [
    greedy_partition,
    rckk_partition,
    forward_ckk_partition,
    lambda v, m: complete_greedy_partition(v, m, max_nodes=100),
]


class TestGreedy:
    def test_lpt_classic(self):
        # LPT on [7,6,5,4,3] into 2 ways -> {7,4,3} vs {6,5}: spread 3.
        r = greedy_partition([7.0, 6.0, 5.0, 4.0, 3.0], 2)
        assert r.makespan == pytest.approx(14.0)
        assert r.spread <= 3.0 + 1e-12

    def test_single_way(self):
        r = greedy_partition([1.0, 2.0], 1)
        assert r.sums == [pytest.approx(3.0)]

    def test_more_ways_than_values(self):
        r = greedy_partition([5.0, 3.0], 4)
        r.validate()
        assert sorted(r.sums) == [0.0, 0.0, pytest.approx(3.0), pytest.approx(5.0)]

    def test_empty(self):
        r = greedy_partition([], 3)
        assert r.sums == [0.0, 0.0, 0.0]


class TestCGA:
    def test_unlimited_is_optimal(self):
        # [4,5,6,7,8] into 2 ways: optimal makespan 15.
        r = complete_greedy_partition([4.0, 5.0, 6.0, 7.0, 8.0], 2, max_nodes=0)
        assert r.makespan == pytest.approx(15.0)

    def test_budgeted_no_worse_than_unbudgeted_greedy_leaf(self):
        values = [9.0, 7.0, 5.0, 3.0, 1.0, 1.0]
        greedy = greedy_partition(values, 3)
        cga = complete_greedy_partition(values, 3, max_nodes=1000)
        assert cga.makespan <= greedy.makespan + 1e-9

    def test_perfect_partition_short_circuits(self):
        r = complete_greedy_partition([2.0, 2.0, 2.0, 2.0], 2, max_nodes=0)
        assert r.spread == pytest.approx(0.0)

    def test_presort_false_keeps_arrival_order_first_leaf(self):
        # With a first-leaf-only budget and no presort, the result is the
        # online least-loaded assignment.
        values = [1.0, 10.0, 1.0, 10.0]
        r = complete_greedy_partition(values, 2, max_nodes=6, presort=False)
        r.validate()
        # Online: 1->w0, 10->w1, 1->w0, 10->w0? no: sums (2,10): 10->w0 =12.
        assert r.makespan == pytest.approx(12.0)

    def test_optimal_guard(self):
        from repro.partition.cga import optimal_partition_cga

        with pytest.raises(ValidationError):
            optimal_partition_cga([1.0] * 29, 2)


class TestKKTwoWay:
    def test_classic_example(self):
        # KK on [8,7,6,5,4]: difference 2 is known.
        r = karmarkar_karp_two_way([8.0, 7.0, 6.0, 5.0, 4.0])
        assert r.spread == pytest.approx(2.0)

    def test_beats_or_ties_greedy_usually(self):
        values = [10.0, 8.0, 7.0, 6.0, 5.0, 4.0]
        kk = karmarkar_karp_two_way(values)
        greedy = greedy_partition(values, 2)
        assert kk.spread <= greedy.spread + 1e-9

    def test_subset_reconstruction_consistent(self):
        values = [8.0, 7.0, 6.0, 5.0, 4.0]
        r = karmarkar_karp_two_way(values)
        r.validate()
        sums = sorted(r.sums)
        assert sums[1] - sums[0] == pytest.approx(r.spread)

    def test_empty(self):
        r = karmarkar_karp_two_way([])
        assert r.subsets == [[], []]


class TestCKK:
    def test_finds_optimal(self):
        # [5,5,4,3,3] -> perfect split 10/10.
        r = ckk_two_way([5.0, 5.0, 4.0, 3.0, 3.0])
        assert r.spread == pytest.approx(0.0)

    def test_never_worse_than_kk(self):
        values = [13.0, 11.0, 7.0, 5.0, 3.0, 2.0]
        kk = karmarkar_karp_two_way(values)
        ckk = ckk_two_way(values)
        assert ckk.spread <= kk.spread + 1e-9

    def test_single_value(self):
        r = ckk_two_way([5.0])
        r.validate()
        assert r.spread == pytest.approx(5.0)


class TestMultiwayKK:
    def test_three_way(self):
        r = karmarkar_karp_multiway([9.0, 8.0, 7.0, 6.0, 5.0, 4.0], 3)
        r.validate()
        # total 39, perfect 13 per way; KK should get close.
        assert r.makespan <= 15.0

    def test_two_way_matches_pairwise_kk_quality(self):
        values = [8.0, 7.0, 6.0, 5.0, 4.0]
        multi = karmarkar_karp_multiway(values, 2)
        pair = karmarkar_karp_two_way(values)
        assert multi.spread == pytest.approx(pair.spread)

    def test_reverse_no_worse_than_forward_on_average(self):
        import numpy as np

        rng = np.random.default_rng(5)
        rev_spreads, fwd_spreads = [], []
        for _ in range(50):
            values = list(rng.uniform(1.0, 100.0, size=12))
            rev_spreads.append(rckk_partition(values, 4).spread)
            fwd_spreads.append(forward_ckk_partition(values, 4).spread)
        assert np.mean(rev_spreads) <= np.mean(fwd_spreads)

    def test_one_way(self):
        r = karmarkar_karp_multiway([3.0, 1.0], 1)
        assert r.sums == [pytest.approx(4.0)]

    def test_empty(self):
        r = karmarkar_karp_multiway([], 3)
        assert r.sums == [0.0, 0.0, 0.0]


class TestRCKK:
    def test_algorithm2_walkthrough(self):
        """Hand-checked run of the paper's Algorithm 2.

        Values [8, 7, 6, 5] into 2 ways:
        - partitions: (8,0),(7,0),(6,0),(5,0)
        - combine (8,0)+(7,0) reversed -> (8,7) -> normalized (1,0)
        - combine (6,0)+(5,0) reversed -> (6,5) -> normalized (1,0)
        - combine (1,0)+(1,0) reversed -> (1,1) -> normalized (0,0)
        Perfect balance: sums 13/13.
        """
        r = rckk_partition([8.0, 7.0, 6.0, 5.0], 2)
        assert sorted(r.sums) == [pytest.approx(13.0), pytest.approx(13.0)]

    def test_iterations_are_n_minus_one(self):
        r = rckk_partition([3.0, 1.0, 4.0, 1.0, 5.0], 3)
        assert r.iterations == 4

    def test_all_indices_assigned(self):
        r = rckk_partition([float(i + 1) for i in range(17)], 5)
        r.validate()


class TestExact:
    def test_optimal_small(self):
        r = exact_partition([10.0, 9.0, 8.0, 7.0, 6.0, 5.0], 3)
        # total 45, perfect 15 per way is achievable: 10+5, 9+6, 8+7.
        assert r.makespan == pytest.approx(15.0)

    def test_heuristics_never_beat_exact(self):
        values = [12.0, 10.0, 9.0, 7.0, 4.0, 3.0, 2.0]
        opt = exact_partition(values, 3).makespan
        for algo in ALGOS_ANY_WAYS:
            assert algo(values, 3).makespan >= opt - 1e-9

    def test_too_large_rejected(self):
        with pytest.raises(ValidationError):
            exact_partition([1.0] * 40, 2)
