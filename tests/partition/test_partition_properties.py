"""Property-based tests for the partitioning substrate (hypothesis)."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.partition import (
    ckk_two_way,
    complete_greedy_partition,
    greedy_partition,
    karmarkar_karp_two_way,
    rckk_partition,
)

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
ways_strategy = st.integers(min_value=1, max_value=6)


@given(values=values_strategy, ways=ways_strategy)
@settings(max_examples=60, deadline=None)
def test_greedy_partitions_every_index(values, ways):
    result = greedy_partition(values, ways)
    result.validate()
    assert sum(result.sums) == pytest.approx(sum(values), abs=1e-6)


@given(values=values_strategy, ways=ways_strategy)
@settings(max_examples=60, deadline=None)
def test_rckk_partitions_every_index(values, ways):
    result = rckk_partition(values, ways)
    result.validate()
    assert sum(result.sums) == pytest.approx(sum(values), abs=1e-6)


@given(values=values_strategy, ways=ways_strategy)
@settings(max_examples=40, deadline=None)
def test_cga_partitions_every_index(values, ways):
    result = complete_greedy_partition(values, ways, max_nodes=500)
    result.validate()
    assert sum(result.sums) == pytest.approx(sum(values), abs=1e-6)


@given(values=values_strategy, ways=ways_strategy)
@settings(max_examples=60, deadline=None)
def test_makespan_bounds(values, ways):
    """Any partition's makespan is between total/m and total."""
    total = sum(values)
    for algo in (greedy_partition, rckk_partition):
        makespan = algo(values, ways).makespan
        assert makespan >= total / ways - 1e-6
        assert makespan <= total + 1e-6


@given(values=values_strategy)
@settings(max_examples=60, deadline=None)
@example(values=[1.0, 1.0, 1.0, 1.0])  # LPT optimal but > 4/3 * lower bound
def test_greedy_lpt_guarantee(values):
    """Graham's list-scheduling bound: C <= total/m + max * (m-1)/m.

    (The textbook 4/3 - 1/(3m) factor is relative to the true optimum;
    against the weaker max(total/m, max) lower bound it is violated by
    e.g. four unit jobs on three machines, where OPT itself is 2.)
    """
    ways = 3
    result = greedy_partition(values, ways)
    biggest = max(values) if values else 0.0
    bound = sum(values) / ways + biggest * (ways - 1) / ways
    assert result.makespan <= bound + 1e-6


@given(values=st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=2, max_size=14,
))
@settings(max_examples=30, deadline=None)
def test_ckk_no_worse_than_kk(values):
    assert (
        ckk_two_way(values).spread
        <= karmarkar_karp_two_way(values).spread + 1e-9
    )


@given(values=st.lists(
    st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    min_size=2, max_size=12,
))
@settings(max_examples=30, deadline=None)
def test_ckk_matches_exhaustive_optimum(values):
    """Unbounded CKK finds the optimal two-way spread."""
    from itertools import combinations

    total = sum(values)
    best = total
    indices = range(len(values))
    for r in range(len(values) + 1):
        for combo in combinations(indices, r):
            s = sum(values[i] for i in combo)
            best = min(best, abs(total - 2 * s))
    assert ckk_two_way(values).spread == pytest.approx(best, abs=1e-6)


@given(values=values_strategy, ways=ways_strategy)
@settings(max_examples=60, deadline=None)
def test_rckk_spread_bounded_by_max_value(values, ways):
    """RCKK's residual spread never exceeds the largest input value."""
    result = rckk_partition(values, ways)
    bound = max(values) if values else 0.0
    assert result.spread <= bound + 1e-6
