"""Smoke + acceptance tests for the churn serving experiment."""

from __future__ import annotations

import pytest

from repro.experiments import churn
from repro.experiments.registry import get


@pytest.fixture(scope="module")
def churn_result(monkeypatch_module):
    """One repetition over a shortened trace (minutes, not hours)."""
    monkeypatch_module.setattr(churn, "DURATION", 600.0)
    monkeypatch_module.setattr(churn, "MEAN_HOLDING", 120.0)
    monkeypatch_module.setattr(churn, "REBALANCE_EVERY", 5)
    return churn.run(repetitions=1)


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    mp = MonkeyPatch()
    yield mp
    mp.undo()


class TestRegistration:
    def test_registered_under_its_module_name(self):
        spec = get("churn")
        assert spec.runner is churn.run
        assert "serving" in spec.tags


class TestShape:
    def test_rows_and_columns(self, churn_result):
        variants = [row["variant"] for row in churn_result.rows]
        assert variants == ["incremental", "full-resolve", "probe_2k"]
        assert churn_result.columns[0] == "variant"
        assert churn_result.notes  # methodology is documented

    def test_incremental_is_faster_per_arrival(self, churn_result):
        by_variant = {row["variant"]: row for row in churn_result.rows}
        inc = by_variant["incremental"]
        full = by_variant["full-resolve"]
        assert inc["re_embed_ms"] < full["re_embed_ms"]
        assert inc["speedup_vs_resolve"] > 1.0
        assert 0.0 <= inc["rejection_rate"] <= 1.0
        assert 0.0 <= full["rejection_rate"] <= 1.0

    def test_probe_row_carries_the_acceptance_number(self, churn_result):
        by_variant = {row["variant"]: row for row in churn_result.rows}
        probe = by_variant["probe_2k"]
        assert probe["speedup_vs_resolve"] > 1.0
        assert probe["re_embed_ms"] > 0.0


class TestAcceptance:
    def test_admit_is_50x_faster_than_resolve_at_2k(self):
        """ISSUE acceptance bar: warm-start admit >= 50x a from-scratch
        joint solve at 2000 active requests (measured ~3 orders)."""
        probe = churn.probe_speedup()
        assert probe["speedup"] >= 50.0
        assert probe["resolve_ms"] > probe["admit_ms"]


class TestAdmissionPolicySelection:
    def test_unknown_policy_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="admission"):
            churn.run(repetitions=1, admission="random")

    def test_power_of_two_runs_and_notes(self, monkeypatch):
        monkeypatch.setattr(churn, "DURATION", 600.0)
        monkeypatch.setattr(churn, "MEAN_HOLDING", 120.0)
        monkeypatch.setattr(churn, "REBALANCE_EVERY", 5)
        result = churn.run(repetitions=1, admission="power-of-two")
        variants = [row["variant"] for row in result.rows]
        assert variants == ["incremental", "full-resolve", "probe_2k"]
        assert any("power-of-two" in note for note in result.notes)

    def test_default_run_carries_no_policy_note(self, churn_result):
        assert not any(
            "power-of-two" in note for note in churn_result.notes
        )

    def test_power_of_two_deterministic_across_jobs(self, monkeypatch):
        monkeypatch.setattr(churn, "DURATION", 600.0)
        monkeypatch.setattr(churn, "MEAN_HOLDING", 120.0)
        monkeypatch.setattr(churn, "REBALANCE_EVERY", 5)
        serial = churn.run(
            repetitions=2, admission="power-of-two", jobs=1
        )
        parallel = churn.run(
            repetitions=2, admission="power-of-two", jobs=2
        )
        strip = (
            "migrations",
            "rejection_rate",
        )  # wall-clock columns excluded
        for a, b in zip(serial.rows, parallel.rows):
            for column in strip:
                assert a[column] == b[column]
