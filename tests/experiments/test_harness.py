"""Unit tests for the experiment harness."""

import pytest

from repro.experiments.harness import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult(
        experiment_id="figX",
        title="Test experiment",
        columns=["x", "algorithm", "metric"],
    )
    r.add_row(x=1, algorithm="A", metric=0.5)
    r.add_row(x=1, algorithm="B", metric=0.7)
    r.add_row(x=2, algorithm="A", metric=0.6)
    return r


class TestRows:
    def test_add_row_validates_columns(self, result):
        with pytest.raises(ValueError):
            result.add_row(x=3, algorithm="A")  # missing 'metric'

    def test_column_extraction(self, result):
        assert result.column("x") == [1, 1, 2]
        with pytest.raises(KeyError):
            result.column("ghost")

    def test_filtered(self, result):
        rows = result.filtered(algorithm="A")
        assert len(rows) == 2
        assert all(r["algorithm"] == "A" for r in rows)

    def test_filtered_multi_criteria(self, result):
        rows = result.filtered(algorithm="A", x=2)
        assert len(rows) == 1


class TestRendering:
    def test_table_contains_header_and_rows(self, result):
        table = result.to_table()
        assert "algorithm" in table
        assert "0.5000" in table

    def test_render_contains_title_and_notes(self, result):
        result.notes.append("a note")
        rendered = result.render()
        assert "figX" in rendered
        assert "Test experiment" in rendered
        assert "note: a note" in rendered

    def test_cell_formats(self):
        r = ExperimentResult("e", "t", ["v"])
        r.add_row(v=0.0)
        r.add_row(v=1234.5)
        r.add_row(v=3.14159)
        r.add_row(v=0.001234)
        r.add_row(v="text")
        table = r.to_table()
        assert "1235" in table or "1234" in table
        assert "3.14" in table
        assert "0.0012" in table
        assert "text" in table

    def test_empty_table(self):
        r = ExperimentResult("e", "t", ["a", "b"])
        assert "a" in r.to_table()
