"""Fig. 7 shared-memory parity — pooled columns must not move a bit.

``fig07.run(shared=True)`` builds every problem instance once in the
parent, pools the VNF/node columns into one ``ScenarioArrays`` and
ships them to workers via ``run_trials(shared=...)``; the rows must be
byte-identical to the per-trial construction path at any ``jobs``.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import fig07
from repro.experiments.sweeps import (
    default_placement_algorithms,
    placement_sweep,
)
from repro.workload.scenarios import PlacementScenario


@pytest.fixture(scope="module")
def default_rows():
    return fig07.run(repetitions=2).rows


class TestSharedParity:
    def test_shared_rows_byte_identical(self, default_rows):
        shared = fig07.run(repetitions=2, shared=True).rows
        assert shared == default_rows

    def test_shared_parallel_rows_byte_identical(self, default_rows):
        shared = fig07.run(repetitions=2, shared=True, jobs=3).rows
        assert shared == default_rows

    def test_shape(self, default_rows):
        assert len(default_rows) == len(fig07.NODE_COUNTS) * 3
        algorithms = {row["algorithm"] for row in default_rows}
        assert algorithms == {"BFDSU", "FFD", "NAH"}


class TestPlacementSweepShared:
    def _scenarios(self):
        return [
            (10, PlacementScenario(num_vnfs=8, num_nodes=6, seed=1)),
            (20, PlacementScenario(num_vnfs=8, num_nodes=6, seed=2)),
        ]

    def test_parity_against_default_path(self):
        default = placement_sweep(
            self._scenarios(), repetitions=2, seed=0
        )
        shared = placement_sweep(
            self._scenarios(), repetitions=2, seed=0, shared=True
        )
        assert shared == default

    def test_explicit_algorithms_refused(self):
        with pytest.raises(ConfigurationError, match="shared=True"):
            placement_sweep(
                self._scenarios(),
                repetitions=1,
                seed=0,
                algorithms=default_placement_algorithms(seed=0),
                shared=True,
            )
