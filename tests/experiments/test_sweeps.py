"""Unit tests for the sweep drivers and enhancement computation."""

import pytest

from repro.experiments.sweeps import (
    default_placement_algorithms,
    default_scheduling_algorithms,
    enhancement_column,
    placement_sweep,
    scheduling_sweep,
)
from repro.workload.scenarios import PlacementScenario, SchedulingScenario


class TestDefaults:
    def test_placement_contenders(self):
        names = [a.name for a in default_placement_algorithms(seed=0)]
        assert names == ["BFDSU", "FFD", "NAH"]

    def test_scheduling_contenders(self):
        names = [a.name for a in default_scheduling_algorithms()]
        assert names == ["RCKK", "CGA"]


class TestPlacementSweep:
    def test_rows_shape(self):
        scenarios = [
            (10, PlacementScenario(num_vnfs=8, num_nodes=6, seed=1)),
            (20, PlacementScenario(num_vnfs=8, num_nodes=6, seed=2)),
        ]
        rows = placement_sweep(scenarios, repetitions=2, seed=0)
        assert len(rows) == 2 * 3  # points x algorithms
        assert {row["x"] for row in rows} == {10, 20}
        for row in rows:
            assert 0.0 < row["utilization"] <= 1.0
            assert row["nodes_in_service"] >= 1.0


class TestSchedulingSweep:
    def test_rows_shape(self):
        scenarios = [
            (15, SchedulingScenario(num_requests=15, num_instances=3, seed=1)),
        ]
        rows = scheduling_sweep(scenarios, repetitions=5)
        assert len(rows) == 2
        for row in rows:
            assert row["mean_w"] > 0.0
            assert row["p99_w"] >= row["mean_w"] * 0.5


class TestEnhancementColumn:
    def test_per_point_ratio(self):
        rows = [
            {"x": 1, "algorithm": "CGA", "mean_w": 10.0},
            {"x": 1, "algorithm": "RCKK", "mean_w": 8.0},
            {"x": 2, "algorithm": "CGA", "mean_w": 4.0},
            {"x": 2, "algorithm": "RCKK", "mean_w": 4.0},
        ]
        enh = enhancement_column(rows, "mean_w")
        assert enh[1] == pytest.approx(0.2)
        assert enh[2] == pytest.approx(0.0)

    def test_missing_algorithm_skipped(self):
        rows = [{"x": 1, "algorithm": "CGA", "mean_w": 10.0}]
        assert enhancement_column(rows, "mean_w") == {}

    def test_zero_baseline_skipped(self):
        rows = [
            {"x": 1, "algorithm": "CGA", "mean_w": 0.0},
            {"x": 1, "algorithm": "RCKK", "mean_w": 0.0},
        ]
        assert enhancement_column(rows, "mean_w") == {}


class TestJointE2E:
    def test_smoke_and_shape(self):
        from repro.experiments import joint_e2e

        result = joint_e2e.run(repetitions=2)
        pipelines = {row["pipeline"] for row in result.rows}
        assert pipelines == {"BFDSU+RCKK", "FFD+CGA", "NAH+CGA"}
        ours = next(
            r for r in result.rows if r["pipeline"] == "BFDSU+RCKK"
        )
        ffd = next(r for r in result.rows if r["pipeline"] == "FFD+CGA")
        assert ours["utilization"] > ffd["utilization"]
