"""Integration tests for the run-everything harness."""

import json

import pytest

from repro.experiments import runall
from repro.experiments.harness import ExperimentResult


@pytest.fixture(scope="module")
def quick_results():
    """One tiny full sweep shared by the tests below (seconds, not minutes)."""
    return runall.run_all(
        placement_repetitions=2,
        scheduling_repetitions=5,
        tail_repetitions=5,
        include_headline=False,
    )


class TestRunAll:
    def test_every_module_produces_a_result(self, quick_results):
        ids = [r.experiment_id for r in quick_results]
        for fig in range(5, 17):
            assert f"fig{fig:02d}" in ids
        assert "tail" in ids
        assert "joint_e2e" in ids
        assert "sensitivity" in ids

    def test_all_results_have_rows(self, quick_results):
        for result in quick_results:
            assert result.rows, f"{result.experiment_id} produced no rows"

    def test_render_everywhere(self, quick_results):
        for result in quick_results:
            rendered = result.render()
            assert result.experiment_id in rendered

    def test_roundtrip_through_dict(self, quick_results):
        for result in quick_results:
            back = ExperimentResult.from_dict(result.to_dict())
            assert back.rows == result.rows
            assert back.columns == result.columns
            assert back.notes == result.notes


class TestCli:
    def test_json_export(self, tmp_path, capsys, monkeypatch):
        # Patch run_all so the CLI test stays fast.
        def tiny(**_kwargs):
            r = ExperimentResult("figX", "t", ["a"])
            r.add_row(a=1)
            return [r]

        monkeypatch.setattr(runall, "run_all", tiny)
        out_path = tmp_path / "results.json"
        assert runall.main(["--json", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["kind"] == "experiment_results"
        assert document["results"][0]["experiment_id"] == "figX"
