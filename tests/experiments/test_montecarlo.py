"""Tests for the shared Monte-Carlo execution engine."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.montecarlo import (
    compute_chunksize,
    resolve_jobs,
    run_trials,
)
from repro.seeding import trial_rng


def _square(task):
    return task * task


def _seeded_draw(task):
    seed, index = task
    return float(trial_rng(seed, index).uniform())


def _explode(task):
    raise ValueError(f"boom on {task}")


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3

    def test_auto_is_at_least_one(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)


class TestRunTrials:
    def test_serial_preserves_task_order(self):
        assert run_trials(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_task_order(self):
        tasks = list(range(20))
        assert run_trials(_square, tasks, jobs=4) == [t * t for t in tasks]

    def test_empty_task_list(self):
        assert run_trials(_square, [], jobs=4) == []

    def test_results_identical_at_any_jobs_level(self):
        tasks = [(123, i) for i in range(12)]
        serial = run_trials(_seeded_draw, tasks, jobs=1)
        parallel = run_trials(_seeded_draw, tasks, jobs=3)
        assert serial == parallel

    def test_non_picklable_fn_falls_back_to_serial(self):
        offset = 10
        closure = lambda task: task + offset  # noqa: E731
        assert run_trials(closure, [1, 2, 3], jobs=4) == [11, 12, 13]

    def test_trial_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom"):
            run_trials(_explode, [1, 2], jobs=1)

    def test_trial_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            run_trials(_explode, [1, 2], jobs=2)


class TestChunkedSubmission:
    def test_chunksize_targets_four_chunks_per_worker(self):
        assert compute_chunksize(80, 4) == 5
        assert compute_chunksize(100, 4) == 7

    def test_chunksize_never_below_one(self):
        assert compute_chunksize(3, 8) == 1
        assert compute_chunksize(0, 4) == 1
        assert compute_chunksize(5, 0) == 1

    def test_results_identical_across_jobs_with_multi_chunk_split(self):
        # Enough tasks that every jobs level yields chunksize > 1 and
        # several chunks per worker — the by-index reduction must still
        # reassemble exactly the serial order.
        tasks = [(97, i) for i in range(50)]
        serial = run_trials(_seeded_draw, tasks, jobs=1)
        for jobs in (2, 3, 5):
            assert run_trials(_seeded_draw, tasks, jobs=jobs) == serial

    def test_chunk_boundary_counts(self):
        # Task counts around chunk boundaries (multiples, off-by-one).
        for n in (7, 8, 9, 16, 17):
            tasks = list(range(n))
            assert run_trials(_square, tasks, jobs=2) == [
                t * t for t in tasks
            ]
