"""Smoke + shape tests for every figure experiment (tiny repetitions).

Each test runs the real experiment pipeline with a handful of
Monte-Carlo repetitions and asserts the *paper's qualitative shape*:
who wins, and in which direction the trend runs.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    tail,
)

PLACEMENT_REPS = 5
SCHED_REPS = 40


def _series(result, algorithm, column):
    return [
        float(row[column])
        for row in result.rows
        if row["algorithm"] == algorithm
    ]


@pytest.fixture(scope="module")
def fig05_result():
    return fig05.run(repetitions=PLACEMENT_REPS)


@pytest.fixture(scope="module")
def fig07_result():
    return fig07.run(repetitions=PLACEMENT_REPS)


@pytest.fixture(scope="module")
def fig11_result():
    return fig11.run(repetitions=SCHED_REPS)


class TestFig05:
    def test_bfdsu_wins(self, fig05_result):
        bfdsu = np.mean(_series(fig05_result, "BFDSU", "utilization"))
        ffd = np.mean(_series(fig05_result, "FFD", "utilization"))
        nah = np.mean(_series(fig05_result, "NAH", "utilization"))
        assert bfdsu > ffd
        assert bfdsu > nah
        assert bfdsu > 0.8

    def test_flat_in_requests(self, fig05_result):
        series = _series(fig05_result, "BFDSU", "utilization")
        assert max(series) - min(series) < 0.1


class TestFig06:
    def test_ordering_holds_across_vnf_scale(self):
        result = fig06.run(repetitions=PLACEMENT_REPS)
        for vnfs in {row["vnfs"] for row in result.rows}:
            by_algo = {
                row["algorithm"]: row["utilization"]
                for row in result.filtered(vnfs=vnfs)
            }
            assert by_algo["BFDSU"] > by_algo["FFD"]
            assert by_algo["BFDSU"] > by_algo["NAH"]


class TestFig07:
    def test_bfdsu_stable_baselines_decay(self, fig07_result):
        bfdsu = _series(fig07_result, "BFDSU", "utilization")
        ffd = _series(fig07_result, "FFD", "utilization")
        nah = _series(fig07_result, "NAH", "utilization")
        # BFDSU stays roughly flat; baselines lose > 15 points.
        assert max(bfdsu) - min(bfdsu) < 0.1
        assert ffd[0] - ffd[-1] > 0.15
        assert nah[0] - nah[-1] > 0.15


class TestFig08:
    def test_bfdsu_uses_fewest_nodes(self):
        result = fig08.run(repetitions=PLACEMENT_REPS)
        bfdsu = np.mean(_series(result, "BFDSU", "nodes_in_service"))
        ffd = np.mean(_series(result, "FFD", "nodes_in_service"))
        nah = np.mean(_series(result, "NAH", "nodes_in_service"))
        assert bfdsu < nah < ffd


class TestFig09:
    def test_occupation_trends(self):
        result = fig09.run(repetitions=PLACEMENT_REPS)
        bfdsu = _series(result, "BFDSU", "occupation")
        ffd = _series(result, "FFD", "occupation")
        # BFDSU stays flat-ish (Monte-Carlo jitter allowed); FFD grows
        # with the pool and ends far above BFDSU.
        assert max(bfdsu) < 1.6 * min(bfdsu) + 1e-9
        assert ffd[-1] > ffd[0]
        assert ffd[-1] > 1.5 * bfdsu[-1]


class TestFig10:
    def test_iteration_ordering(self):
        result = fig10.run(repetitions=PLACEMENT_REPS)
        ffd = np.mean(_series(result, "FFD", "iterations"))
        bfdsu = np.mean(_series(result, "BFDSU", "iterations"))
        nah = np.mean(_series(result, "NAH", "iterations"))
        assert ffd == 1.0
        assert ffd < bfdsu < nah


class TestFig11:
    def test_rckk_beats_cga_everywhere(self, fig11_result):
        for n in {row["requests"] for row in fig11_result.rows}:
            by_algo = {
                row["algorithm"]: row["mean_w"]
                for row in fig11_result.filtered(requests=n)
            }
            assert by_algo["RCKK"] <= by_algo["CGA"] + 1e-12

    def test_enhancement_declines(self, fig11_result):
        enh = [
            float(row["enhancement"])
            for row in fig11_result.rows
            if row["algorithm"] == "RCKK"
        ]
        assert enh[0] > 0.15  # strong gap at few requests
        assert enh[-1] < 0.05  # nearly gone at many requests


class TestFig12:
    def test_lossless_enhancement_below_lossy(self, fig11_result):
        result12 = fig12.run(repetitions=SCHED_REPS)
        enh11 = [
            float(r["enhancement"])
            for r in fig11_result.rows
            if r["algorithm"] == "RCKK"
        ]
        enh12 = [
            float(r["enhancement"])
            for r in result12.rows
            if r["algorithm"] == "RCKK"
        ]
        # Averaged over the sweep, loss increases RCKK's advantage.
        assert np.mean(enh12) <= np.mean(enh11) + 0.02


class TestFig13Fig14:
    def test_enhancement_grows_with_instances(self):
        result = fig13.run(repetitions=SCHED_REPS)
        enh = [
            float(r["enhancement"])
            for r in result.rows
            if r["algorithm"] == "RCKK"
        ]
        assert enh[-1] > enh[0]

    def test_fig14_same_shape(self):
        result = fig14.run(repetitions=SCHED_REPS)
        enh = [
            float(r["enhancement"])
            for r in result.rows
            if r["algorithm"] == "RCKK"
        ]
        assert enh[-1] > enh[0]


class TestFig15Fig16:
    def test_rckk_near_zero_low_loss(self):
        result = fig15.run(repetitions=SCHED_REPS)
        rckk = _series(result, "RCKK", "rejection_rate")
        cga = _series(result, "CGA", "rejection_rate")
        assert max(rckk) < 0.01
        assert np.mean(cga) > np.mean(rckk)

    def test_higher_loss_higher_rejection(self):
        low = fig15.run(repetitions=SCHED_REPS)
        high = fig16.run(repetitions=SCHED_REPS)
        assert np.mean(_series(high, "CGA", "rejection_rate")) > np.mean(
            _series(low, "CGA", "rejection_rate")
        )


class TestTail:
    def test_rckk_tail_no_worse(self):
        result = tail.run(repetitions=SCHED_REPS)
        for n in {row["requests"] for row in result.rows}:
            by_algo = {
                row["algorithm"]: row["p99_w"]
                for row in result.filtered(requests=n)
            }
            assert by_algo["RCKK"] <= by_algo["CGA"] * 1.05
