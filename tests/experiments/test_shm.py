"""Shared-memory scenario passing: byte-identity and graceful fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.core.dtypes import LEAN_POLICY
from repro.exceptions import ConfigurationError
from repro.experiments import shm as shm_mod
from repro.experiments.montecarlo import run_trials
from repro.experiments.shm import (
    attach_arrays,
    publish_arrays,
    published,
    unpublish_arrays,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.stream import stream_scenario


@pytest.fixture
def arrays():
    gen = WorkloadGenerator(rng=np.random.default_rng(21))
    w = gen.workload(num_vnfs=6, num_nodes=10, num_requests=25)
    return ScenarioArrays.build(w.vnfs, w.requests, w.capacities)


COLUMNS = shm_mod._COLUMNS


def _trial(task, arrays):
    """Module-level shared trial: a deterministic scenario digest."""
    seed, _rep = task
    rng = np.random.default_rng(seed)
    pick = rng.integers(0, len(arrays.request_ids))
    return (
        float(arrays.eff_rate[pick]),
        float(arrays.lambda_r.sum()),
        int(arrays.chain_ptr[-1]),
        arrays.request_ids[int(pick)],
    )


class TestPublishAttach:
    @pytest.mark.parametrize("backend", ["shm", "mmap", "inline"])
    def test_roundtrip_each_backend(self, arrays, backend):
        try:
            handle = publish_arrays(arrays, backend=backend)
        except Exception:
            if backend == "shm":
                pytest.skip("POSIX shared memory unavailable")
            raise
        try:
            assert handle.backend == backend
            # Same-process attach returns the published original.
            assert attach_arrays(handle) is arrays
            # Simulate a worker: drop the publisher registry entry so
            # attach takes the real backend path.
            entry = shm_mod._published.pop(handle.token)
            try:
                remote = attach_arrays(handle)
                assert remote is not arrays
                for name in COLUMNS:
                    np.testing.assert_array_equal(
                        np.asarray(getattr(remote, name)),
                        getattr(arrays, name),
                        err_msg=name,
                    )
                    assert (
                        getattr(remote, name).dtype
                        == getattr(arrays, name).dtype
                    )
                assert tuple(remote.request_ids) == tuple(arrays.request_ids)
                assert remote.vnf_index == arrays.vnf_index
            finally:
                shm_mod._published[handle.token] = entry
                shm_mod._attached.pop(handle.token, None)
                block = shm_mod._attached_blocks.pop(handle.token, None)
                if block is not None:
                    block.close()
        finally:
            unpublish_arrays(handle)

    def test_lean_streamed_scenario_roundtrip(self):
        scn = stream_scenario(
            num_vnfs=6, num_nodes=8, num_requests=40,
            rng=np.random.default_rng(3), dtypes=LEAN_POLICY,
        )
        handle = publish_arrays(scn.arrays, backend="mmap")
        try:
            entry = shm_mod._published.pop(handle.token)
            try:
                remote = attach_arrays(handle)
                assert remote.index_dtype == np.int32
                assert remote.float_dtype == np.float32
                np.testing.assert_array_equal(
                    np.asarray(remote.chain_vnf), scn.arrays.chain_vnf
                )
                # Lazy views survive the trip.
                assert remote.request_ids[5] == "r5"
                assert remote.request_index["r7"] == 7
                assert remote.chain_names[0] == scn.arrays.chain_names[0]
            finally:
                shm_mod._published[handle.token] = entry
                shm_mod._attached.pop(handle.token, None)
        finally:
            unpublish_arrays(handle)

    def test_bad_backend_rejected(self, arrays):
        with pytest.raises(ConfigurationError):
            publish_arrays(arrays, backend="tape")

    def test_unpublish_idempotent(self, arrays):
        handle = publish_arrays(arrays, backend="inline")
        unpublish_arrays(handle)
        unpublish_arrays(handle)


class TestPublishedContextManager:
    def test_releases_on_normal_exit(self, arrays):
        with published(arrays) as handle:
            assert attach_arrays(handle) is arrays
        assert handle.token not in shm_mod._published

    def test_releases_on_exception(self, arrays):
        # The leak regression: a trial raising through run_trials must
        # not strand the published segment (orphaned /dev/shm repro_*
        # blocks accumulate per crashed experiment otherwise).
        with pytest.raises(RuntimeError, match="trial exploded"):
            with published(arrays) as handle:
                raise RuntimeError("trial exploded")
        assert handle.token not in shm_mod._published
        if handle.backend == "shm":
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=handle.location)

    def test_releases_mmap_directory_on_exception(self, arrays, tmp_path):
        import os

        with pytest.raises(ValueError, match="boom"):
            with published(arrays, backend="mmap") as handle:
                assert os.path.isdir(handle.location)
                raise ValueError("boom")
        assert not os.path.exists(handle.location)


class TestSharedTrials:
    def test_serial_vs_parallel_byte_identical(self, arrays):
        tasks = [(seed, rep) for seed in range(4) for rep in range(3)]
        serial = run_trials(_trial, tasks, jobs=1, shared=arrays)
        parallel = run_trials(_trial, tasks, jobs=2, shared=arrays)
        assert serial == parallel

    def test_matches_unshared_reference(self, arrays):
        tasks = [(seed, 0) for seed in range(5)]
        got = run_trials(_trial, tasks, jobs=1, shared=arrays)
        ref = [_trial(task, arrays) for task in tasks]
        assert got == ref

    def test_fallback_when_shm_unavailable(self, arrays, monkeypatch):
        # Both fast backends blow up -> inline handle, identical result.
        monkeypatch.setattr(
            shm_mod, "_publish_shm",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no /dev/shm")),
        )
        monkeypatch.setattr(
            shm_mod, "_publish_mmap",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no tmpdir")),
        )
        handle = publish_arrays(arrays)
        try:
            assert handle.backend == "inline"
            tasks = [(seed, 0) for seed in range(4)]
            got = run_trials(_trial, tasks, jobs=2, shared=handle)
            assert got == [_trial(task, arrays) for task in tasks]
        finally:
            unpublish_arrays(handle)

    def test_shared_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            run_trials(_trial, [(0, 0)], jobs=1, shared={"not": "arrays"})

    def test_handle_is_small_to_pickle(self, arrays):
        import pickle

        handle = publish_arrays(arrays, backend="mmap")
        try:
            blob = pickle.dumps(handle)
            # The whole point: the handle must be orders of magnitude
            # smaller than the pickled scenario.
            assert len(blob) < len(pickle.dumps(arrays)) / 2
        finally:
            unpublish_arrays(handle)
