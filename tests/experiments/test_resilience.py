"""Smoke + acceptance tests for the resilience experiment."""

from __future__ import annotations

import pytest

from repro.experiments import resilience
from repro.experiments.registry import get


@pytest.fixture(scope="module")
def result():
    return resilience.run(repetitions=1)


class TestRegistration:
    def test_registered_under_its_module_name(self):
        spec = get("resilience")
        assert spec.runner is resilience.run
        assert "faults" in spec.tags
        assert spec.order == 24


class TestShape:
    def test_rows_cover_the_policy_x_mtbf_grid(self, result):
        combos = {(row["mtbf_s"], row["policy"]) for row in result.rows}
        assert combos == {
            (mtbf, name)
            for mtbf in resilience.MTBF_VALUES
            for name, _factory in resilience.POLICIES
        }
        for row in result.rows:
            assert 0.0 <= row["availability"] <= 1.0
            assert row["violation_minutes"] >= 0.0
            assert row["evictions"] >= 0.0
        assert len(result.notes) == 3

    def test_crashes_actually_happen(self, result):
        assert any(row["evictions"] > 0 for row in result.rows)

    def test_deferred_trades_availability_for_migrations(self, result):
        by = {
            (row["mtbf_s"], row["policy"]): row for row in result.rows
        }
        for mtbf in resilience.MTBF_VALUES:
            deferred = by[(mtbf, "deferred")]
            immediate = by[(mtbf, "least-loaded")]
            assert (
                deferred["availability"] <= immediate["availability"]
            )

    def test_deterministic_across_jobs(self):
        serial = resilience.run(repetitions=2, jobs=1)
        parallel = resilience.run(repetitions=2, jobs=3)
        assert serial.rows == parallel.rows


class TestRepairProbe:
    """ISSUE acceptance: incremental recovery reaches the same
    post-recovery admission set as a full re-solve while moving
    strictly fewer chains under a finite budget."""

    def test_acceptance_bar(self):
        probe = resilience.repair_probe()
        assert probe["evicted"] > 0
        assert probe["same_admission_set"] is True
        assert probe["pending_incremental"] == 0
        assert probe["moved_incremental"] < probe["moved_full"]

    def test_deterministic(self):
        assert resilience.repair_probe() == resilience.repair_probe()
