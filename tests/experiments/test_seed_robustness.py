"""Seed robustness: the paper-shape conclusions survive reseeding.

The figure experiments fix seeds for reproducibility; these tests rerun
the decisive comparisons under *different* seeds and require the same
qualitative orderings, guarding against calibration that only holds on
the checked-in random streams.
"""

import numpy as np
import pytest

from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.metrics import schedule_report
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.scenarios import PlacementScenario, SchedulingScenario

#: Seeds deliberately different from every experiment module's default.
ALTERNATE_SEEDS = (910, 8211)


@pytest.mark.parametrize("seed", ALTERNATE_SEEDS)
class TestPlacementOrderingRobust:
    def test_bfdsu_beats_baselines(self, seed):
        scenario = PlacementScenario(
            num_vnfs=15, num_nodes=10, num_requests=100, seed=seed
        )
        utils = {"BFDSU": [], "FFD": [], "NAH": []}
        nodes = {"BFDSU": [], "FFD": [], "NAH": []}
        for rep in range(8):
            problem = scenario.build(rep)
            for algo in (
                BFDSUPlacement(rng=np.random.default_rng(seed + rep)),
                FFDPlacement(),
                NAHPlacement(),
            ):
                result = algo.place(problem)
                utils[algo.name].append(result.average_utilization)
                nodes[algo.name].append(result.num_used_nodes)
        assert np.mean(utils["BFDSU"]) > np.mean(utils["FFD"]) + 0.1
        assert np.mean(utils["BFDSU"]) > np.mean(utils["NAH"]) + 0.1
        assert np.mean(nodes["BFDSU"]) <= np.mean(nodes["NAH"]) + 0.5
        assert np.mean(nodes["BFDSU"]) <= np.mean(nodes["FFD"]) + 0.5


@pytest.mark.parametrize("seed", ALTERNATE_SEEDS)
class TestSchedulingOrderingRobust:
    def test_rckk_beats_cga_at_few_requests(self, seed):
        scenario = SchedulingScenario(
            num_requests=15,
            num_instances=5,
            delivery_probability=0.98,
            rho=0.8,
            seed=seed,
        )
        ws = {"RCKK": [], "CGA": []}
        for rep in range(60):
            problem = scenario.build(rep)
            for algo in (RCKKScheduler(), CGAScheduler()):
                ws[algo.name].append(
                    schedule_report(
                        algo.schedule(problem), apply_admission=True
                    ).average_response_time
                )
        enhancement = (np.mean(ws["CGA"]) - np.mean(ws["RCKK"])) / np.mean(
            ws["CGA"]
        )
        assert enhancement > 0.1

    def test_gap_fades_at_many_requests(self, seed):
        scenario = SchedulingScenario(
            num_requests=250,
            num_instances=5,
            delivery_probability=0.98,
            rho=0.8,
            seed=seed,
        )
        ws = {"RCKK": [], "CGA": []}
        for rep in range(30):
            problem = scenario.build(rep)
            for algo in (RCKKScheduler(), CGAScheduler()):
                ws[algo.name].append(
                    schedule_report(
                        algo.schedule(problem), apply_admission=True
                    ).average_response_time
                )
        enhancement = (np.mean(ws["CGA"]) - np.mean(ws["RCKK"])) / np.mean(
            ws["CGA"]
        )
        assert abs(enhancement) < 0.05
