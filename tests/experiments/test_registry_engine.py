"""Tests for the experiment registry, seeding scheme, and runall CLI."""

import numpy as np
import pytest

from repro.exceptions import UnknownExperimentError, ValidationError
from repro.experiments import fig05, registry, runall
from repro.experiments.harness import ExperimentResult
from repro.experiments.registry import ExperimentSpec
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.seeding import DEFAULT_SEED, derive_seed, resolve_rng, trial_rng
from repro.workload.generator import WorkloadGenerator


class TestRegistryCompleteness:
    def test_every_experiment_module_registers_exactly_once(self):
        specs = registry.load_all()
        names = [spec.name for spec in specs]
        assert len(names) == len(set(names)), "duplicate registrations"
        assert sorted(names) == registry.experiment_module_names()

    def test_specs_sorted_in_report_order(self):
        specs = registry.load_all()
        orders = [(spec.order, spec.name) for spec in specs]
        assert orders == sorted(orders)

    def test_get_unknown_name_lists_valid_names(self):
        with pytest.raises(UnknownExperimentError) as exc_info:
            registry.get("fig99")
        message = str(exc_info.value)
        assert "fig99" in message
        assert "fig05" in message and "headline" in message

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentSpec(
                name="x", title="x", runner=lambda: None, profile="nope"
            )

    def test_duplicate_name_rejected(self):
        spec = registry.get("fig05")
        clone = ExperimentSpec(
            name="fig05", title="clone", runner=lambda: None
        )
        with pytest.raises(ValidationError):
            registry.register(clone)
        # Re-registering the same object is a no-op (module re-import).
        assert registry.register(spec) is spec


class TestSpecRun:
    def test_meta_stamped_on_result(self):
        def runner(repetitions=3, seed=11, jobs=1):
            result = ExperimentResult("toy", "t", ["a"])
            result.add_row(a=repetitions)
            return result

        spec = ExperimentSpec(
            name="toy", title="t", runner=runner, default_repetitions=3
        )
        result = spec.run(repetitions=2, seed=5, jobs=2)
        assert result.meta["experiment"] == "toy"
        assert result.meta["repetitions"] == 2
        assert result.meta["seed"] == 5
        assert result.meta["jobs"] == 2
        assert result.meta["wall_time_s"] >= 0.0

    def test_defaults_recorded_when_not_overridden(self):
        def runner(repetitions=3, seed=11, jobs=1):
            return ExperimentResult("toy", "t", ["a"])

        spec = ExperimentSpec(
            name="toy", title="t", runner=runner, default_repetitions=3
        )
        result = spec.run()
        assert result.meta["repetitions"] == 3
        assert result.meta["seed"] == 11  # inspected from the signature

    def test_render_shows_only_deterministic_meta(self):
        result = ExperimentResult("toy", "t", ["a"])
        result.add_row(a=1)
        result.meta.update(
            {"repetitions": 4, "seed": 9, "jobs": 8, "wall_time_s": 1.23}
        )
        rendered = result.render()
        assert "repetitions=4" in rendered and "seed=9" in rendered
        assert "jobs" not in rendered and "wall_time" not in rendered

    def test_meta_roundtrips_through_dict(self):
        result = ExperimentResult("toy", "t", ["a"])
        result.add_row(a=1)
        result.meta.update({"seed": 9, "jobs": 8, "wall_time_s": 1.23})
        back = ExperimentResult.from_dict(result.to_dict())
        assert back.meta == result.meta
        assert back.rows == result.rows


class TestSeedDeterminism:
    def test_fig05_identical_across_jobs_levels(self):
        serial = fig05.run(repetitions=2, seed=7, jobs=1)
        parallel = fig05.run(repetitions=2, seed=7, jobs=4)
        assert serial.rows == parallel.rows
        assert serial.render() == parallel.render()

    def test_run_all_only_is_repeatable(self):
        first = runall.run_all(
            placement_repetitions=2, only=["fig05"], seed=42, jobs=1
        )
        second = runall.run_all(
            placement_repetitions=2, only=["fig05"], seed=42, jobs=2
        )
        assert [r.rows for r in first] == [r.rows for r in second]
        assert first[0].meta["seed"] == derive_seed(42, "fig05")

    def test_run_all_rejects_unknown_only(self):
        with pytest.raises(UnknownExperimentError):
            runall.run_all(only=["not_an_experiment"])

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(42, "fig05") == derive_seed(42, "fig05")
        assert derive_seed(42, "fig05") != derive_seed(42, "fig06")
        assert derive_seed(42, "fig05") != derive_seed(43, "fig05")

    def test_trial_rng_independent_of_order(self):
        a = trial_rng(5, 2, 3).uniform()
        trial_rng(5, 0, 0).uniform()  # interleaved draws don't matter
        assert a == trial_rng(5, 2, 3).uniform()

    def test_default_constructed_bfdsu_is_deterministic(self):
        w = WorkloadGenerator().workload(
            num_vnfs=6, num_nodes=5, num_requests=10
        )
        problem = PlacementProblem(
            vnfs=w.vnfs, capacities=w.capacities, chains=w.chains
        )
        first = BFDSUPlacement().place(problem)
        second = BFDSUPlacement().place(problem)
        assert first.placement == second.placement

    def test_resolve_rng_none_uses_documented_default(self):
        assert (
            resolve_rng(None).uniform()
            == np.random.default_rng(DEFAULT_SEED).uniform()
        )


class TestCli:
    def test_list_names_every_experiment(self, capsys):
        assert runall.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out

    def test_only_unknown_name_errors_with_valid_names(self, capsys):
        assert runall.main(["--only", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "fig05" in err

    def test_negative_jobs_errors_cleanly(self, capsys):
        assert runall.main(["--only", "fig05", "--jobs", "-1"]) == 2
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_only_runs_named_experiment(self, capsys):
        assert runall.main(["--only", "sensitivity", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "sensitivity" in captured.out
        assert "fig05" not in captured.out
        assert "[timing]" in captured.err  # timings on stderr only
        assert "[timing]" not in captured.out
