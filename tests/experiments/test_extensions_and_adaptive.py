"""Tests for the extensions-comparison experiment and adaptive sweeps."""

import pytest

from repro.experiments import extensions_compare
from repro.experiments.sweeps import scheduling_sweep
from repro.workload.scenarios import SchedulingScenario


class TestExtensionsCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return extensions_compare.run(repetitions=3)

    def test_all_variants_reported(self, result):
        variants = {row["variant"] for row in result.rows}
        assert variants == {
            "BFDSU",
            "ChainAffinity",
            "BestOf5",
            "BFDSU+LocalSearch",
        }

    def test_local_search_cuts_cross_hops(self, result):
        by_variant = {row["variant"]: row for row in result.rows}
        assert (
            by_variant["BFDSU+LocalSearch"]["cross_hop_fraction"]
            <= by_variant["BFDSU"]["cross_hop_fraction"] + 1e-9
        )

    def test_local_search_keeps_consolidation(self, result):
        by_variant = {row["variant"]: row for row in result.rows}
        # Relocates never change which nodes are available; nodes in
        # service may shrink but never grow.
        assert (
            by_variant["BFDSU+LocalSearch"]["nodes"]
            <= by_variant["BFDSU"]["nodes"] + 1e-9
        )

    def test_metrics_in_range(self, result):
        for row in result.rows:
            assert 0.0 < row["utilization"] <= 1.0
            assert 0.0 <= row["cross_hop_fraction"] <= 1.0


class TestAdaptiveSweep:
    def test_adaptive_stops_early_on_easy_points(self):
        scenario = SchedulingScenario(
            num_requests=100, num_instances=5, rho=0.5, seed=3
        )
        # Low load, low variance: convergence should fire well before
        # the 400-repetition cap.
        rows = scheduling_sweep(
            [(100, scenario)],
            repetitions=400,
            adaptive_precision=0.05,
        )
        assert len(rows) == 2
        # The sweep ran; means are positive and finite.
        for row in rows:
            assert 0.0 < row["mean_w"] < 1.0

    def test_adaptive_matches_fixed_within_precision(self):
        scenario = SchedulingScenario(
            num_requests=50, num_instances=5, rho=0.8, seed=4
        )
        fixed = scheduling_sweep([(50, scenario)], repetitions=200)
        adaptive = scheduling_sweep(
            [(50, scenario)], repetitions=200, adaptive_precision=0.02
        )
        fixed_w = {r["algorithm"]: r["mean_w"] for r in fixed}
        adaptive_w = {r["algorithm"]: r["mean_w"] for r in adaptive}
        for name in fixed_w:
            assert adaptive_w[name] == pytest.approx(
                fixed_w[name], rel=0.10
            )
