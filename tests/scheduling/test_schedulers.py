"""Unit tests for all request-scheduling algorithms."""

import numpy as np
import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling import (
    CGAScheduler,
    LeastLoadedScheduler,
    RandomScheduler,
    RCKKScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.base import SchedulingProblem

CHAIN = ServiceChain(["fw"])


def _problem(rates, instances=3, mu=1000.0, p=1.0):
    vnf = VNF("fw", 1.0, instances, mu)
    requests = [
        Request(f"r{i}", CHAIN, rate, delivery_probability=p)
        for i, rate in enumerate(rates)
    ]
    return SchedulingProblem(vnf=vnf, requests=requests)


ALL_SCHEDULERS = [
    RCKKScheduler(),
    CGAScheduler(),
    CGAScheduler(presort=True),
    RoundRobinScheduler(),
    LeastLoadedScheduler(),
    RandomScheduler(rng=np.random.default_rng(0)),
]


@pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
class TestCommonBehaviour:
    def test_every_request_assigned(self, scheduler):
        problem = _problem([5.0, 3.0, 8.0, 2.0, 7.0])
        result = scheduler.schedule(problem)
        result.validate()
        assert set(result.assignment) == {f"r{i}" for i in range(5)}

    def test_rates_conserved(self, scheduler):
        problem = _problem([5.0, 3.0, 8.0])
        result = scheduler.schedule(problem)
        assert sum(result.instance_rates()) == pytest.approx(16.0)

    def test_single_instance(self, scheduler):
        problem = _problem([5.0, 3.0], instances=1)
        result = scheduler.schedule(problem)
        assert set(result.assignment.values()) == {0}


class TestRCKK:
    def test_balances_better_than_round_robin(self):
        rng = np.random.default_rng(1)
        rates = list(rng.uniform(1.0, 100.0, size=20))
        problem = _problem(rates, instances=4)
        rckk = RCKKScheduler().schedule(problem)
        rr = RoundRobinScheduler().schedule(problem)

        def spread(result):
            r = result.instance_rates()
            return max(r) - min(r)

        assert spread(rckk) < spread(rr)

    def test_perfect_split(self):
        problem = _problem([8.0, 7.0, 6.0, 5.0], instances=2)
        result = RCKKScheduler().schedule(problem)
        rates = sorted(result.instance_rates())
        assert rates == [pytest.approx(13.0), pytest.approx(13.0)]

    def test_partitions_effective_rates(self):
        # With loss, balancing happens on lambda/P.
        problem = _problem([9.8, 9.8], instances=2, p=0.98)
        result = RCKKScheduler().schedule(problem)
        rates = result.instance_rates()
        assert rates[0] == pytest.approx(rates[1])
        assert rates[0] == pytest.approx(10.0)


class TestCGA:
    def test_arrival_order_default(self):
        # presort=False: first leaf is online least-loaded in given order.
        problem = _problem([1.0, 10.0, 1.0, 10.0], instances=2)
        result = CGAScheduler(max_nodes=6).schedule(problem)
        rates = sorted(result.instance_rates())
        assert rates == [pytest.approx(10.0), pytest.approx(12.0)]

    def test_presort_improves_balance(self):
        rng = np.random.default_rng(2)
        rates = list(rng.uniform(1.0, 100.0, size=12))
        problem = _problem(rates, instances=4)
        plain = CGAScheduler().schedule(problem)
        sorted_cga = CGAScheduler(presort=True, max_nodes=5000).schedule(problem)

        def spread(result):
            r = result.instance_rates()
            return max(r) - min(r)

        assert spread(sorted_cga) <= spread(plain) + 1e-9

    def test_unlimited_budget_is_optimal(self):
        problem = _problem([5.0, 5.0, 4.0, 3.0, 3.0], instances=2)
        result = CGAScheduler(max_nodes=0, presort=True).schedule(problem)
        rates = sorted(result.instance_rates())
        assert rates == [pytest.approx(10.0), pytest.approx(10.0)]


class TestLeastLoaded:
    def test_online_greedy(self):
        problem = _problem([10.0, 10.0, 1.0], instances=2)
        result = LeastLoadedScheduler().schedule(problem)
        # 10 -> i0, 10 -> i1, 1 -> i0.
        assert result.assignment["r2"] == result.assignment["r0"]


class TestRoundRobin:
    def test_cyclic(self):
        problem = _problem([1.0] * 5, instances=2)
        result = RoundRobinScheduler().schedule(problem)
        assert [result.assignment[f"r{i}"] for i in range(5)] == [0, 1, 0, 1, 0]


class TestRandom:
    def test_deterministic_given_seed(self):
        p1 = _problem([1.0, 2.0, 3.0])
        p2 = _problem([1.0, 2.0, 3.0])
        a = RandomScheduler(np.random.default_rng(5)).schedule(p1)
        b = RandomScheduler(np.random.default_rng(5)).schedule(p2)
        assert a.assignment == b.assignment
