"""Unit tests for the move/swap schedule refinement."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.base import SchedulingProblem
from repro.scheduling.rckk import RCKKScheduler
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.scheduling.swap_refine import SwapRefinedScheduler, refine_assignment

CHAIN = ServiceChain(["fw"])


def _problem(rates, instances=3):
    vnf = VNF("fw", 1.0, instances, 1e6)
    requests = [
        Request(f"r{i}", CHAIN, rate) for i, rate in enumerate(rates)
    ]
    return SchedulingProblem(vnf=vnf, requests=requests)


class TestRefineAssignment:
    def test_move_fixes_gross_imbalance(self):
        # All on way 0.
        rates = [5.0, 5.0, 5.0, 5.0]
        assignment, moves = refine_assignment(rates, [0, 0, 0, 0], 2)
        sums = [0.0, 0.0]
        for idx, way in enumerate(assignment):
            sums[way] += rates[idx]
        assert max(sums) == pytest.approx(10.0)
        assert moves > 0

    def test_swap_when_move_cannot_help(self):
        # Ways: [9, 1] and [5, 5]: moving 9 or 1 can't beat swapping 9<->5.
        rates = [9.0, 1.0, 5.0, 5.0]
        assignment, _ = refine_assignment(rates, [0, 0, 1, 1], 2)
        sums = [0.0, 0.0]
        for idx, way in enumerate(assignment):
            sums[way] += rates[idx]
        assert max(sums) == pytest.approx(10.0)

    def test_never_increases_makespan(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rates = list(rng.uniform(1.0, 50.0, size=12))
            start = list(rng.integers(0, 4, size=12))
            before = max(
                sum(rates[i] for i in range(12) if start[i] == w)
                for w in range(4)
            )
            refined, _ = refine_assignment(rates, start, 4)
            after = max(
                sum(rates[i] for i in range(12) if refined[i] == w)
                for w in range(4)
            )
            assert after <= before + 1e-9

    def test_input_not_mutated(self):
        start = [0, 0, 1]
        refine_assignment([3.0, 2.0, 1.0], start, 2)
        assert start == [0, 0, 1]

    def test_bad_rounds(self):
        with pytest.raises(ValidationError):
            refine_assignment([1.0], [0], 1, max_rounds=0)


class TestSwapRefinedScheduler:
    def test_improves_round_robin(self):
        rng = np.random.default_rng(1)
        rates = list(rng.uniform(1.0, 100.0, size=15))
        problem = _problem(rates, instances=4)
        rr = RoundRobinScheduler().schedule(problem)
        refined = SwapRefinedScheduler(
            base=RoundRobinScheduler()
        ).schedule(problem)
        assert max(refined.instance_rates()) <= max(rr.instance_rates()) + 1e-9

    def test_no_worse_than_rckk(self):
        rng = np.random.default_rng(2)
        for rep in range(10):
            rates = list(rng.uniform(1.0, 100.0, size=20))
            problem = _problem(rates, instances=5)
            rckk = RCKKScheduler().schedule(problem)
            refined = SwapRefinedScheduler().schedule(problem)
            assert (
                max(refined.instance_rates())
                <= max(rckk.instance_rates()) + 1e-9
            )

    def test_valid_schedule(self):
        problem = _problem([5.0, 4.0, 3.0, 2.0, 1.0])
        result = SwapRefinedScheduler().schedule(problem)
        result.validate()
        assert result.algorithm == "SwapRefined(RCKK)"
