"""Unit tests for the scheduling problem/result model."""

import pytest

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.base import (
    SchedulingProblem,
    ScheduleResult,
    schedule_all_vnfs,
)
from repro.scheduling.rckk import RCKKScheduler


@pytest.fixture
def vnf():
    return VNF("fw", 10.0, 2, 100.0)


@pytest.fixture
def chain():
    return ServiceChain(["fw"])


def _requests(chain, rates, p=1.0):
    return [
        Request(f"r{i}", chain, rate, delivery_probability=p)
        for i, rate in enumerate(rates)
    ]


class TestProblem:
    def test_valid(self, vnf, chain):
        p = SchedulingProblem(vnf=vnf, requests=_requests(chain, [5.0, 3.0]))
        assert p.num_instances == 2
        assert p.num_requests == 2

    def test_effective_rates(self, vnf, chain):
        p = SchedulingProblem(
            vnf=vnf, requests=_requests(chain, [9.8, 4.9], p=0.98)
        )
        assert p.effective_rates() == [pytest.approx(10.0), pytest.approx(5.0)]
        assert p.total_effective_rate() == pytest.approx(15.0)

    def test_no_requests_rejected(self, vnf):
        with pytest.raises(ValidationError):
            SchedulingProblem(vnf=vnf, requests=[])

    def test_wrong_chain_rejected(self, vnf):
        other = ServiceChain(["nat"])
        with pytest.raises(ValidationError):
            SchedulingProblem(vnf=vnf, requests=_requests(other, [1.0]))

    def test_duplicate_ids_rejected(self, vnf, chain):
        reqs = [
            Request("dup", chain, 1.0),
            Request("dup", chain, 2.0),
        ]
        with pytest.raises(ValidationError):
            SchedulingProblem(vnf=vnf, requests=reqs)


class TestResult:
    def test_instances_materialized(self, vnf, chain):
        problem = SchedulingProblem(
            vnf=vnf, requests=_requests(chain, [5.0, 3.0, 2.0])
        )
        result = ScheduleResult(
            assignment={"r0": 0, "r1": 1, "r2": 0},
            problem=problem,
        )
        instances = result.instances()
        assert len(instances) == 2
        assert instances[0].external_arrival_rate == pytest.approx(7.0)
        assert instances[1].external_arrival_rate == pytest.approx(3.0)

    def test_instance_rates(self, vnf, chain):
        problem = SchedulingProblem(
            vnf=vnf, requests=_requests(chain, [5.0, 3.0])
        )
        result = ScheduleResult(
            assignment={"r0": 0, "r1": 1}, problem=problem
        )
        assert result.instance_rates() == [
            pytest.approx(5.0),
            pytest.approx(3.0),
        ]

    def test_validate_missing_assignment(self, vnf, chain):
        problem = SchedulingProblem(vnf=vnf, requests=_requests(chain, [1.0]))
        result = ScheduleResult(assignment={}, problem=problem)
        with pytest.raises(ValidationError, match="Eq. 5"):
            result.validate()

    def test_validate_out_of_range(self, vnf, chain):
        problem = SchedulingProblem(vnf=vnf, requests=_requests(chain, [1.0]))
        result = ScheduleResult(assignment={"r0": 5}, problem=problem)
        with pytest.raises(ValidationError):
            result.validate()

    def test_validate_unknown_request(self, vnf, chain):
        problem = SchedulingProblem(vnf=vnf, requests=_requests(chain, [1.0]))
        result = ScheduleResult(
            assignment={"r0": 0, "ghost": 1}, problem=problem
        )
        with pytest.raises(ValidationError):
            result.validate()

    def test_unassigned_instances_raises(self, vnf, chain):
        problem = SchedulingProblem(vnf=vnf, requests=_requests(chain, [1.0]))
        result = ScheduleResult(assignment={}, problem=problem)
        with pytest.raises(SchedulingError):
            result.instances()


class TestScheduleAllVnfs:
    def test_joint_map(self):
        fw = VNF("fw", 1.0, 2, 100.0)
        nat = VNF("nat", 1.0, 1, 200.0)
        chain_both = ServiceChain(["fw", "nat"])
        chain_fw = ServiceChain(["fw"])
        requests = [
            Request("r0", chain_both, 5.0),
            Request("r1", chain_fw, 3.0),
        ]
        joint = schedule_all_vnfs([fw, nat], requests, RCKKScheduler())
        assert ("r0", "fw") in joint
        assert ("r0", "nat") in joint
        assert ("r1", "fw") in joint
        assert ("r1", "nat") not in joint

    def test_unused_vnf_skipped(self):
        fw = VNF("fw", 1.0, 1, 100.0)
        idle = VNF("idle", 1.0, 1, 100.0)
        requests = [Request("r0", ServiceChain(["fw"]), 1.0)]
        joint = schedule_all_vnfs([fw, idle], requests, RCKKScheduler())
        assert all(vnf == "fw" for (_, vnf) in joint)

    @pytest.mark.parametrize("seed", [1, 42, 20170605])
    def test_z_map_matches_quadratic_reference(self, seed):
        """Regression: the single-pass inverted index must yield the
        exact joint ``z`` map the old per-VNF request scan produced."""
        import numpy as np

        from repro.workload.generator import WorkloadGenerator

        w = WorkloadGenerator(np.random.default_rng(seed)).workload(
            num_vnfs=8, num_nodes=5, num_requests=40
        )
        scheduler = RCKKScheduler()

        # Pre-refactor implementation: re-scan all requests per VNF.
        reference = {}
        for vnf in w.vnfs:
            users = [r for r in w.requests if r.uses(vnf.name)]
            if not users:
                continue
            result = scheduler.schedule(
                SchedulingProblem(vnf=vnf, requests=users)
            )
            result.validate()
            for request_id, k in result.assignment.items():
                reference[(request_id, vnf.name)] = k

        assert schedule_all_vnfs(w.vnfs, w.requests, scheduler) == reference
