"""Unit tests for the warm-start admit kernel (``least_loaded_admit``)."""

from __future__ import annotations

import numpy as np

from repro.scheduling.least_loaded import least_loaded_admit


class TestSelection:
    def test_picks_least_loaded(self):
        loads = np.array([5.0, 2.0, 7.0])
        assert least_loaded_admit(loads, 1.0) == 1

    def test_first_index_wins_ties(self):
        # Matches the legacy scalar min(..., key=(load, index)) rule.
        loads = np.array([3.0, 3.0, 3.0])
        assert least_loaded_admit(loads, 1.0) == 0
        loads = np.array([4.0, 2.0, 2.0])
        assert least_loaded_admit(loads, 1.0) == 1

    def test_empty_vector_rejects(self):
        assert least_loaded_admit(np.array([]), 1.0) == -1

    def test_loads_not_mutated(self):
        loads = np.array([1.0, 2.0])
        least_loaded_admit(loads, 5.0, capacity=10.0)
        np.testing.assert_array_equal(loads, [1.0, 2.0])


class TestCapacityGate:
    def test_within_capacity_admitted(self):
        loads = np.array([8.0, 6.0])
        assert least_loaded_admit(loads, 3.0, capacity=10.0) == 1

    def test_over_capacity_rejected(self):
        loads = np.array([8.0, 6.0])
        assert least_loaded_admit(loads, 5.0, capacity=10.0) == -1

    def test_exact_boundary_admits_via_epsilon(self):
        # The Eq. (6) slack convention: <= capacity + fit_eps fits.
        loads = np.array([7.0])
        assert least_loaded_admit(loads, 3.0, capacity=10.0) == 0

    def test_no_capacity_means_no_gate(self):
        loads = np.array([1e12])
        assert least_loaded_admit(loads, 1e12) == 0
