"""Property-based tests for scheduling algorithms (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling import (
    CGAScheduler,
    LeastLoadedScheduler,
    RCKKScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.base import SchedulingProblem

CHAIN = ServiceChain(["fw"])

rates_strategy = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)
instances_strategy = st.integers(min_value=1, max_value=8)

SCHEDULERS = [
    RCKKScheduler(),
    CGAScheduler(),
    RoundRobinScheduler(),
    LeastLoadedScheduler(),
]


def _problem(rates, instances):
    vnf = VNF("fw", 1.0, instances, 1e6)
    requests = [
        Request(f"r{i}", CHAIN, rate) for i, rate in enumerate(rates)
    ]
    return SchedulingProblem(vnf=vnf, requests=requests)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@given(rates=rates_strategy, instances=instances_strategy)
@settings(max_examples=30, deadline=None)
def test_schedule_is_complete_and_valid(scheduler, rates, instances):
    """Eq. (5): every request lands on exactly one in-range instance."""
    result = scheduler.schedule(_problem(rates, instances))
    result.validate()


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@given(rates=rates_strategy, instances=instances_strategy)
@settings(max_examples=30, deadline=None)
def test_total_rate_conserved(scheduler, rates, instances):
    """Eq. (7): instance rates sum to the total effective rate."""
    problem = _problem(rates, instances)
    result = scheduler.schedule(problem)
    assert sum(result.instance_rates()) == pytest.approx(
        problem.total_effective_rate(), rel=1e-9
    )


@given(rates=rates_strategy, instances=instances_strategy)
@settings(max_examples=30, deadline=None)
def test_rckk_makespan_lower_bound(rates, instances):
    """No instance can carry less than total/m at the makespan."""
    problem = _problem(rates, instances)
    result = RCKKScheduler().schedule(problem)
    makespan = max(result.instance_rates())
    assert makespan >= problem.total_effective_rate() / instances - 1e-6


@given(rates=rates_strategy, instances=instances_strategy)
@settings(max_examples=30, deadline=None)
def test_rckk_never_worse_than_round_robin_spread(rates, instances):
    problem = _problem(rates, instances)
    rckk = RCKKScheduler().schedule(problem)
    rr = RoundRobinScheduler().schedule(problem)

    def spread(result):
        r = result.instance_rates()
        return max(r) - min(r)

    assert spread(rckk) <= spread(rr) + 1e-6
