"""Unit tests for the CKK two-way scheduler."""

import numpy as np
import pytest

from repro.exceptions import SchedulingError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.base import SchedulingProblem
from repro.scheduling.ckk import CKKScheduler
from repro.scheduling.rckk import RCKKScheduler

CHAIN = ServiceChain(["fw"])


def _problem(rates, instances=2):
    vnf = VNF("fw", 1.0, instances, 1e6)
    requests = [
        Request(f"r{i}", CHAIN, rate) for i, rate in enumerate(rates)
    ]
    return SchedulingProblem(vnf=vnf, requests=requests)


class TestCKK:
    def test_optimal_split(self):
        result = CKKScheduler().schedule(_problem([5.0, 5.0, 4.0, 3.0, 3.0]))
        rates = sorted(result.instance_rates())
        assert rates == [pytest.approx(10.0), pytest.approx(10.0)]

    def test_requires_two_instances(self):
        with pytest.raises(SchedulingError):
            CKKScheduler().schedule(_problem([1.0, 2.0, 3.0], instances=3))

    def test_never_worse_than_rckk(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            rates = list(rng.uniform(1.0, 100.0, size=14))
            problem = _problem(rates)
            ckk = CKKScheduler().schedule(problem)
            rckk = RCKKScheduler().schedule(problem)

            def spread(result):
                r = result.instance_rates()
                return max(r) - min(r)

            assert spread(ckk) <= spread(rckk) + 1e-9

    def test_validates(self):
        result = CKKScheduler().schedule(_problem([1.0, 2.0, 3.0, 4.0]))
        result.validate()

    def test_budget_still_yields_valid_schedule(self):
        result = CKKScheduler(max_nodes=10).schedule(
            _problem(list(np.random.default_rng(1).uniform(1, 100, 30)))
        )
        result.validate()
