"""Unit tests for scheduling metrics (W(f,k), rejection, enhancement)."""

import math

import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.scheduling.base import SchedulingProblem, ScheduleResult
from repro.scheduling.metrics import enhancement_ratio, schedule_report

CHAIN = ServiceChain(["fw"])


def _result(rates, assignment, instances=2, mu=100.0, p=1.0):
    vnf = VNF("fw", 1.0, instances, mu)
    requests = [
        Request(f"r{i}", CHAIN, rate, delivery_probability=p)
        for i, rate in enumerate(rates)
    ]
    problem = SchedulingProblem(vnf=vnf, requests=requests)
    return ScheduleResult(
        assignment=assignment, problem=problem, algorithm="T"
    )


class TestScheduleReport:
    def test_stable_metrics(self):
        result = _result([40.0, 40.0], {"r0": 0, "r1": 1})
        report = schedule_report(result)
        assert report.average_response_time == pytest.approx(1.0 / 60.0)
        assert report.max_response_time == pytest.approx(1.0 / 60.0)
        assert report.makespan == pytest.approx(40.0)
        assert report.spread == pytest.approx(0.0)
        assert report.rejection_rate == 0.0

    def test_imbalance_raises_average(self):
        balanced = schedule_report(_result([40.0, 40.0], {"r0": 0, "r1": 1}))
        skewed = schedule_report(_result([40.0, 40.0], {"r0": 0, "r1": 0}))
        assert skewed.average_response_time > balanced.average_response_time

    def test_unstable_without_admission_is_inf(self):
        result = _result([80.0, 80.0], {"r0": 0, "r1": 0})
        report = schedule_report(result, apply_admission=False)
        assert math.isinf(report.average_response_time)
        assert report.num_rejected == 0

    def test_admission_restores_stability(self):
        result = _result([80.0, 80.0], {"r0": 0, "r1": 0})
        report = schedule_report(result, apply_admission=True)
        assert math.isfinite(report.average_response_time)
        assert report.num_rejected == 1
        assert report.rejection_rate == pytest.approx(0.5)

    def test_idle_instances_excluded_from_w(self):
        result = _result([40.0], {"r0": 0}, instances=3)
        report = schedule_report(result)
        assert report.average_response_time == pytest.approx(1.0 / 60.0)

    def test_utilizations_reported_per_instance(self):
        result = _result([40.0, 20.0], {"r0": 0, "r1": 1})
        report = schedule_report(result)
        assert report.utilizations == (pytest.approx(0.4), pytest.approx(0.2))

    def test_loss_inflates_effective_rate(self):
        clean = schedule_report(_result([40.0], {"r0": 0}, instances=1))
        lossy = schedule_report(
            _result([40.0], {"r0": 0}, instances=1, p=0.9)
        )
        assert lossy.average_response_time > clean.average_response_time


class TestEnhancementRatio:
    def test_positive_improvement(self):
        assert enhancement_ratio(10.0, 8.0) == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert enhancement_ratio(0.0, 1.0) == 0.0

    def test_both_infinite(self):
        assert enhancement_ratio(math.inf, math.inf) == 0.0
