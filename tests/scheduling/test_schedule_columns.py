"""Parity tests: column-native scheduling vs the per-VNF object path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.core.dtypes import LEAN_POLICY
from repro.core.evaluation import evaluate_columns, evaluate_deployment
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.state import DeploymentState
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.base import PlacementProblem
from repro.scheduling.base import schedule_all_vnfs
from repro.scheduling.kernels import (
    least_loaded_assign,
    round_robin_assign,
    schedule_columns,
)
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.scheduling.round_robin import RoundRobinScheduler
from repro.workload.generator import WorkloadGenerator


@pytest.fixture
def workload():
    gen = WorkloadGenerator(rng=np.random.default_rng(13))
    return gen.workload(num_vnfs=10, num_nodes=16, num_requests=80)


SCHEDULERS = {
    "least_loaded": LeastLoadedScheduler(),
    "round_robin": RoundRobinScheduler(),
}


class TestAssignKernels:
    def test_least_loaded_matches_heap_semantics(self):
        rates = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        k = least_loaded_assign(rates, 3)
        # Replay by hand: loads start at 0, ties break on lowest index.
        loads = [0.0, 0.0, 0.0]
        expected = []
        for r in rates:
            j = min(range(3), key=lambda i: (loads[i], i))
            expected.append(j)
            loads[j] += r
        assert k.tolist() == expected

    def test_round_robin_closed_form(self):
        assert round_robin_assign([1.0] * 7, 3).tolist() == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_rejects_zero_instances(self):
        with pytest.raises(SchedulingError):
            least_loaded_assign([1.0], 0)
        with pytest.raises(SchedulingError):
            round_robin_assign([1.0], 0)


class TestScheduleColumnsParity:
    @pytest.mark.parametrize("policy", ["least_loaded", "round_robin"])
    def test_rows_identical_to_object_path(self, workload, policy):
        arrays = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        joint = schedule_all_vnfs(
            workload.vnfs, workload.requests, SCHEDULERS[policy]
        )
        ref = arrays.schedule_arrays(joint)
        got = schedule_columns(arrays, policy=policy)
        for name in ("req", "vnf", "k", "inst"):
            np.testing.assert_array_equal(
                getattr(got, name), getattr(ref, name), err_msg=name
            )
            assert getattr(got, name).dtype == getattr(ref, name).dtype

    def test_lean_dtype_indices_exact(self, workload):
        lean = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        default = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        got = schedule_columns(lean, policy="round_robin")
        ref = schedule_columns(default, policy="round_robin")
        assert got.req.dtype == np.int32
        np.testing.assert_array_equal(got.req.astype(np.int64), ref.req)
        np.testing.assert_array_equal(got.k.astype(np.int64), ref.k)

    def test_custom_callable_policy(self, workload):
        arrays = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        got = schedule_columns(
            arrays, policy=lambda rates, m: np.zeros(len(rates), dtype=np.int64)
        )
        assert (got.k == 0).all()

    def test_unknown_policy_rejected(self, workload):
        arrays = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        with pytest.raises(ValidationError):
            schedule_columns(arrays, policy="nope")


class TestEvaluateColumnsParity:
    def test_matches_state_evaluation(self, workload):
        arrays = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        placement = BFDSUPlacement(rng=np.random.default_rng(5)).place(
            PlacementProblem(
                vnfs=workload.vnfs, capacities=workload.capacities
            )
        )
        joint = schedule_all_vnfs(
            workload.vnfs, workload.requests, LeastLoadedScheduler()
        )
        state = DeploymentState(
            vnfs=workload.vnfs,
            requests=workload.requests,
            node_capacities=workload.capacities,
            placement=placement.placement,
            schedule=joint,
        )
        ref = evaluate_deployment(state, with_admission=False)
        got = evaluate_columns(
            arrays,
            arrays.placement_vector(placement.placement),
            schedule_columns(arrays, policy="least_loaded"),
        )
        assert got.average_node_utilization == pytest.approx(
            ref.average_node_utilization, rel=1e-12
        )
        assert got.nodes_in_service == ref.nodes_in_service
        assert got.resource_occupation == pytest.approx(
            ref.resource_occupation, rel=1e-12
        )
        assert got.max_instance_utilization == pytest.approx(
            ref.max_instance_utilization, rel=1e-12
        )
        if np.isfinite(ref.average_response_latency):
            assert got.average_response_latency == pytest.approx(
                ref.average_response_latency, rel=1e-12
            )
            assert got.total_latency == pytest.approx(
                ref.total_latency, rel=1e-12
            )
        else:
            assert not np.isfinite(got.average_response_latency)
        assert got.num_rejected == 0
