"""Unit tests for instance sizing and replica scale-out."""

import pytest

from repro.core.scaling import (
    offered_load,
    required_instances,
    scale_out,
    size_instances,
    unservable_requests,
)
from repro.exceptions import ConfigurationError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

CHAIN = ServiceChain(["fw"])


def _requests(rates, p=1.0):
    return [
        Request(f"r{i}", CHAIN, rate, delivery_probability=p)
        for i, rate in enumerate(rates)
    ]


class TestOfferedLoad:
    def test_sums_effective_rates(self):
        reqs = _requests([10.0, 20.0], p=0.5)
        assert offered_load("fw", reqs) == pytest.approx(60.0)

    def test_other_vnf_zero(self):
        assert offered_load("nat", _requests([10.0])) == 0.0


class TestUnservableRequests:
    def test_oversized_request_flagged(self):
        vnf = VNF("fw", 1.0, 1, 50.0)
        reqs = _requests([60.0, 10.0])
        flagged = unservable_requests(vnf, reqs)
        assert [r.request_id for r in flagged] == ["r0"]

    def test_loss_can_make_request_unservable(self):
        vnf = VNF("fw", 1.0, 1, 50.0)
        # 45 raw at P=0.8 is 56.25 effective > 50.
        flagged = unservable_requests(vnf, _requests([45.0], p=0.8))
        assert len(flagged) == 1

    def test_all_servable(self):
        vnf = VNF("fw", 1.0, 1, 1000.0)
        assert unservable_requests(vnf, _requests([10.0, 20.0])) == []


class TestRequiredInstances:
    def test_sizing_formula(self):
        # Load 100, mu 30, target 0.9 -> ceil(100/27) = 4.
        vnf = VNF("fw", 1.0, 1, 30.0)
        reqs = _requests([25.0] * 4)
        assert required_instances(vnf, reqs) == 4

    def test_at_least_one(self):
        vnf = VNF("fw", 1.0, 1, 1e6)
        assert required_instances(vnf, _requests([1.0])) == 1

    def test_bounded_by_request_count_eq3(self):
        # Huge load from 2 requests: still at most 2 instances.
        vnf = VNF("fw", 1.0, 1, 10.0)
        assert required_instances(vnf, _requests([100.0, 100.0])) == 2

    def test_no_users(self):
        vnf = VNF("fw", 1.0, 5, 10.0)
        assert required_instances(vnf, []) == 1

    def test_loss_inflates_requirement(self):
        vnf = VNF("fw", 1.0, 1, 30.0)
        clean = required_instances(vnf, _requests([20.0] * 5, p=1.0))
        lossy = required_instances(vnf, _requests([20.0] * 5, p=0.8))
        assert lossy >= clean

    def test_bad_target(self):
        vnf = VNF("fw", 1.0, 1, 30.0)
        with pytest.raises(ValidationError):
            required_instances(vnf, _requests([1.0]), target_utilization=1.0)


class TestSizeInstances:
    def test_resizes_all(self):
        vnfs = [VNF("fw", 1.0, 1, 30.0), VNF("nat", 1.0, 9, 1e6)]
        chain = ServiceChain(["fw", "nat"])
        reqs = [Request(f"r{i}", chain, 25.0) for i in range(4)]
        sized = size_instances(vnfs, reqs)
        by_name = {f.name: f for f in sized}
        assert by_name["fw"].num_instances == 4
        assert by_name["nat"].num_instances == 1  # overprovisioned shrinks

    def test_originals_untouched(self):
        vnfs = [VNF("fw", 1.0, 1, 30.0)]
        size_instances(vnfs, _requests([25.0] * 4))
        assert vnfs[0].num_instances == 1


class TestScaleOut:
    def test_no_split_when_under_ceiling(self):
        vnfs = [VNF("fw", 1.0, 1, 30.0)]
        reqs = _requests([25.0] * 4)
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        assert [f.name for f in plan.vnfs] == ["fw"]
        assert plan.replicas_of("fw") == ["fw"]
        assert plan.requests[0].chain.vnf_names == ("fw",)

    def test_split_into_replicas(self):
        # Load 200 over mu=10 at 0.9 -> 23 instances; ceiling 10 -> 3 replicas.
        vnfs = [VNF("fw", 1.0, 1, 10.0)]
        reqs = _requests([8.0] * 25)
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        names = plan.replicas_of("fw")
        assert names == ["fw", "fw#1", "fw#2"]
        assert {f.name for f in plan.vnfs} == set(names)
        for vnf in plan.vnfs:
            assert vnf.num_instances <= 10

    def test_requests_rebound_to_replicas(self):
        vnfs = [VNF("fw", 1.0, 1, 10.0)]
        reqs = _requests([8.0] * 25)
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        names = set(plan.replicas_of("fw"))
        used = {r.chain.vnf_names[0] for r in plan.requests}
        assert used == names  # every replica serves someone
        assert len(plan.requests) == 25

    def test_replica_loads_balanced(self):
        vnfs = [VNF("fw", 1.0, 1, 10.0)]
        reqs = _requests([8.0] * 24)
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        loads = {name: 0.0 for name in plan.replicas_of("fw")}
        for r in plan.requests:
            loads[r.chain.vnf_names[0]] += r.effective_rate
        values = sorted(loads.values())
        assert values[-1] - values[0] <= 8.0 + 1e-9  # within one request

    def test_multi_vnf_chain_rebinding(self):
        chain = ServiceChain(["fw", "nat"])
        vnfs = [VNF("fw", 1.0, 1, 10.0), VNF("nat", 1.0, 1, 1e6)]
        reqs = [Request(f"r{i}", chain, 8.0) for i in range(25)]
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        for r in plan.requests:
            assert len(r.chain) == 2
            assert r.chain.vnf_names[1] == "nat"  # untouched VNF stays

    def test_replicas_feed_placement(self):
        """Scale-out output drops straight into the joint optimizer."""
        import numpy as np

        from repro.core.joint import JointOptimizer
        from repro.placement.bfdsu import BFDSUPlacement

        vnfs = [VNF("fw", 10.0, 1, 10.0)]
        reqs = _requests([8.0] * 25)
        plan = scale_out(vnfs, reqs, max_instances_per_vnf=10)
        capacities = {f"n{i}": 150.0 for i in range(4)}
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(0))
        ).optimize(plan.vnfs, plan.requests, capacities)
        solution.state.validate()

    def test_bad_ceiling(self):
        with pytest.raises(ConfigurationError):
            scale_out([VNF("fw", 1.0, 1, 1.0)], _requests([1.0]), 0)

    def test_unknown_replica_group(self):
        plan = scale_out([VNF("fw", 1.0, 1, 1e6)], _requests([1.0]), 5)
        with pytest.raises(ValidationError):
            plan.replicas_of("ghost")
