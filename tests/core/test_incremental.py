"""Unit + identity tests for the incremental deployment engine.

The load-bearing property (docs/SERVING.md): after ANY admit/depart/
rebalance sequence, a ``rebalance()`` leaves the engine exactly where
``solve_joint`` over the surviving request set (same seed policy)
lands from scratch — same placement dict, same schedule dict — with
and without ``bandwidth=``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import (
    AdmitReport,
    DeploymentEngine,
    RebalanceReport,
    solve_joint,
)
from repro.exceptions import SchedulingError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.seeding import derive_seed
from repro.topology.random_topology import random_datacenter
from repro.workload.generator import WorkloadGenerator


def _request(i, names, rate, p=1.0, prefix="q"):
    return Request(
        f"{prefix}{i}", ServiceChain(list(names)), rate,
        delivery_probability=p,
    )


@pytest.fixture
def small_vnfs():
    return [
        VNF("fw", demand_per_instance=10.0, num_instances=2,
            service_rate=100.0),
        VNF("lb", demand_per_instance=8.0, num_instances=2,
            service_rate=100.0),
    ]


@pytest.fixture
def small_caps():
    return {"n0": 40.0, "n1": 40.0}


class TestAdmit:
    def test_admit_assigns_least_loaded(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        first = engine.admit(_request(0, ["fw", "lb"], 10.0))
        assert isinstance(first, AdmitReport)
        assert first.admitted and first.reason is None
        assert first.assignment == {"fw": 0, "lb": 0}
        # Second arrival joins the other (now less loaded) instances.
        second = engine.admit(_request(1, ["fw"], 5.0))
        assert second.assignment == {"fw": 1}
        assert engine.assignment_of("q1") == {"fw": 1}
        assert engine.num_active == 2
        assert engine.active_requests == ("q0", "q1")

    def test_duplicate_id_raises(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        engine.admit(_request(0, ["fw"], 1.0))
        with pytest.raises(SchedulingError, match="already active"):
            engine.admit(_request(0, ["lb"], 2.0))

    def test_unknown_vnf_raises(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        with pytest.raises(SchedulingError, match="unknown VNF"):
            engine.admit(_request(0, ["ghost"], 1.0))

    def test_duplicate_initial_ids_raise(self, small_vnfs, small_caps):
        twice = [_request(0, ["fw"], 1.0), _request(0, ["lb"], 2.0)]
        with pytest.raises(SchedulingError, match="duplicate"):
            DeploymentEngine(small_vnfs, small_caps, twice)

    def test_capacity_rejection_is_side_effect_free(
        self, small_vnfs, small_caps
    ):
        # Cap per instance: mu * 0.5 = 50.  Two instances => a third
        # heavy request has no instance with headroom.
        engine = DeploymentEngine(
            small_vnfs, small_caps, target_utilization=0.5
        )
        assert engine.admit(_request(0, ["fw"], 45.0)).admitted
        assert engine.admit(_request(1, ["fw"], 45.0)).admitted
        before_loads = engine.instance_loads()
        report = engine.admit(_request(2, ["fw", "lb"], 45.0))
        assert not report.admitted
        assert report.reason == "capacity"
        assert report.assignment == {}
        assert engine.num_active == 2
        np.testing.assert_array_equal(
            engine.instance_loads(), before_loads
        )
        # The rejected id was never registered - it can retry smaller.
        assert engine.admit(_request(2, ["fw", "lb"], 1.0)).admitted


class TestBandwidthGate:
    @pytest.fixture
    def fabric(self):
        """Two fat VNFs that cannot colocate on a 3-node line fabric."""
        vnfs = [
            VNF("fw", demand_per_instance=60.0, num_instances=1,
                service_rate=1000.0),
            VNF("lb", demand_per_instance=60.0, num_instances=1,
                service_rate=1000.0),
        ]
        caps = {"node0": 100.0, "node1": 100.0, "node2": 100.0}
        topo = random_datacenter(
            3,
            rng=np.random.default_rng(7),
            capacities=[100.0, 100.0, 100.0],
        )
        return vnfs, caps, topo

    def test_bandwidth_rejection_is_side_effect_free(self, fabric):
        vnfs, caps, topo = fabric
        engine = DeploymentEngine(
            vnfs, caps, topology=topo, bandwidth=10.0,
            target_utilization=None,
        )
        # fw and lb sit on different nodes, so the chain flow crosses
        # at least one link of budget 10.
        assert len(set(engine.placement.values())) == 2
        assert engine.admit(_request(0, ["fw", "lb"], 6.0)).admitted
        before = engine._link_loads.copy()
        report = engine.admit(_request(1, ["fw", "lb"], 6.0))
        assert not report.admitted
        assert report.reason == "bandwidth"
        assert engine.num_active == 1
        np.testing.assert_array_equal(engine._link_loads, before)
        # A flow that fits the residual is still welcome.
        assert engine.admit(_request(1, ["fw", "lb"], 3.0)).admitted

    def test_depart_restores_link_residuals_exactly(self, fabric):
        vnfs, caps, topo = fabric
        engine = DeploymentEngine(
            vnfs, caps, topology=topo, bandwidth=100.0,
            target_utilization=None,
        )
        baseline = engine._link_loads.copy()
        engine.admit(_request(0, ["fw", "lb"], 7.25))
        engine.admit(_request(1, ["lb", "fw"], 2.5))
        engine.depart("q1")
        engine.depart("q0")
        np.testing.assert_array_equal(engine._link_loads, baseline)


class TestDepart:
    def test_depart_is_exact_inverse(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        baseline = engine.instance_loads()
        engine.admit(_request(0, ["fw", "lb"], 10.0, 0.8))
        engine.admit(_request(1, ["lb"], 3.0))
        engine.depart("q0")
        engine.depart("q1")
        np.testing.assert_array_equal(engine.instance_loads(), baseline)
        assert engine.num_active == 0

    def test_unknown_id_raises(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        with pytest.raises(SchedulingError, match="unknown request"):
            engine.depart("ghost")
        with pytest.raises(SchedulingError, match="unknown request"):
            engine.assignment_of("ghost")


def _churn(engine, requests, rng, admits=18, departs=9):
    """A deterministic admit/depart interleaving; returns survivors."""
    pool = list(requests)
    for request in pool[:admits]:
        engine.admit(request)
    active = list(engine.active_requests)
    for _ in range(departs):
        victim = active.pop(int(rng.integers(len(active))))
        engine.depart(victim)
    return [engine._requests[rid] for rid in engine.active_requests]


class TestBatchIdentity:
    """Engine state after rebalance == solve_joint over survivors."""

    def test_identity_without_bandwidth(self):
        gen = WorkloadGenerator(np.random.default_rng(20170605))
        w = gen.workload(num_vnfs=8, num_nodes=10, num_requests=40)
        engine = DeploymentEngine(
            w.vnfs, w.capacities, w.requests[:15], seed=123
        )
        rng = np.random.default_rng(99)
        survivors = _churn(engine, w.requests[15:], rng)
        engine.rebalance()
        ref = solve_joint(w.vnfs, survivors, w.capacities, seed=123)
        got = engine.state()
        assert got.placement == ref.placement
        assert got.schedule == ref.schedule

    def test_identity_with_bandwidth(self):
        gen = WorkloadGenerator(np.random.default_rng(20170605))
        w = gen.workload(num_vnfs=6, num_nodes=8, num_requests=30)
        topo = random_datacenter(
            8,
            rng=np.random.default_rng(derive_seed(5, "fabric")),
            capacities=[w.capacities[f"node{i}"] for i in range(8)],
        )
        bw = 1e9  # generous: constrain the code path, not feasibility
        engine = DeploymentEngine(
            w.vnfs, w.capacities, w.requests[:12], seed=321,
            topology=topo, bandwidth=bw,
        )
        rng = np.random.default_rng(77)
        survivors = _churn(engine, w.requests[12:], rng, admits=14,
                           departs=7)
        engine.rebalance()
        ref = solve_joint(
            w.vnfs, survivors, w.capacities, seed=321,
            topology=topo, bandwidth=bw,
        )
        got = engine.state()
        assert got.placement == ref.placement
        assert got.schedule == ref.schedule
        # Link residuals agree with a from-scratch reload too.
        np.testing.assert_allclose(
            engine._link_loads,
            engine._network.link_loads(engine._placement_vec),
            rtol=0, atol=1e-9,
        )

    def test_rebalance_report_counts(self):
        gen = WorkloadGenerator(np.random.default_rng(20170605))
        w = gen.workload(num_vnfs=8, num_nodes=10, num_requests=30)
        engine = DeploymentEngine(w.vnfs, w.capacities, w.requests[:20])
        report = engine.rebalance()
        assert isinstance(report, RebalanceReport)
        # Nothing churned: the re-solve reproduces itself exactly.
        assert report.placement_moves == 0
        assert report.schedule_migrations == 0
        assert report.active_requests == 20
        assert report.total_migrations == 0


class TestResidualBookkeeping:
    def test_instance_loads_match_recompute_before_rebalance(self):
        """Warm-start drift is zero: residuals == from-scratch bincount."""
        gen = WorkloadGenerator(np.random.default_rng(20170605))
        w = gen.workload(num_vnfs=8, num_nodes=10, num_requests=40)
        engine = DeploymentEngine(
            w.vnfs, w.capacities, w.requests[:15],
            target_utilization=None,
        )
        rng = np.random.default_rng(31)
        _churn(engine, w.requests[15:], rng)
        state = engine.state()
        recomputed, _, _ = state.arrays().instance_rates(
            state.schedule_arrays()
        )
        np.testing.assert_allclose(
            engine.instance_loads(), recomputed, rtol=0, atol=1e-9
        )

    def test_state_roundtrip_validates(self, small_vnfs, small_caps):
        engine = DeploymentEngine(
            small_vnfs, small_caps, [_request(0, ["fw"], 5.0)]
        )
        engine.admit(_request(1, ["fw", "lb"], 2.0))
        state = engine.state()  # validates internally
        assert set(state.schedule) == {
            ("q0", "fw"), ("q1", "fw"), ("q1", "lb"),
        }


class TestFaultOps:
    """Crash/repair primitives added in PR 9 (docs/RESILIENCE.md)."""

    def test_fail_node_evicts_and_gates_admission(
        self, small_vnfs, small_caps
    ):
        engine = DeploymentEngine(small_vnfs, small_caps)
        engine.admit(_request(0, ["fw", "lb"], 10.0))
        engine.admit(_request(1, ["lb"], 3.0))
        victim = engine.placement["fw"]
        evicted = engine.fail_node(victim)
        assert engine.failed_nodes == frozenset({victim})
        assert [r.request_id for r in evicted] == [
            rid
            for rid in ("q0", "q1")
            if any(
                engine.placement[name] == victim
                for name in (["fw", "lb"] if rid == "q0" else ["lb"])
            )
        ]
        assert "q0" not in engine.active_requests
        # Chains touching the dead node are now unavailable.
        report = engine.admit(_request(9, ["fw"], 1.0))
        assert not report.admitted
        assert report.reason == "unavailable"
        # Repair re-opens admission (placement is untouched).
        engine.recover_node(victim)
        assert engine.failed_nodes == frozenset()
        assert engine.admit(_request(9, ["fw"], 1.0)).admitted

    def test_fail_node_twice_is_noop(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        engine.admit(_request(0, ["fw"], 1.0))
        victim = engine.placement["fw"]
        assert engine.fail_node(victim)
        assert engine.fail_node(victim) == []

    def test_fail_unknown_node_raises(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        with pytest.raises(SchedulingError, match="unknown node"):
            engine.fail_node("ghost")
        with pytest.raises(SchedulingError, match="unknown node"):
            engine.recover_node("ghost")

    def test_fail_instance_masks_and_recovers(
        self, small_vnfs, small_caps
    ):
        engine = DeploymentEngine(small_vnfs, small_caps)
        first = engine.admit(_request(0, ["fw"], 10.0))
        k = first.assignment["fw"]
        evicted = engine.fail_instance("fw", k)
        assert [r.request_id for r in evicted] == ["q0"]
        assert engine.down_instances().sum() == 1
        # The surviving instance still admits.
        report = engine.admit(_request(1, ["fw"], 5.0))
        assert report.admitted
        assert report.assignment["fw"] == 1 - k
        # All instances down => unavailable.
        second = engine.fail_instance("fw", 1 - k)
        assert [r.request_id for r in second] == ["q1"]
        rejected = engine.admit(_request(2, ["fw"], 1.0))
        assert not rejected.admitted
        assert rejected.reason == "unavailable"
        engine.recover_instance("fw", k)
        assert engine.admit(_request(2, ["fw"], 1.0)).admitted
        assert engine.down_instances().sum() == 1

    def test_fail_instance_validates_arguments(
        self, small_vnfs, small_caps
    ):
        engine = DeploymentEngine(small_vnfs, small_caps)
        with pytest.raises(SchedulingError, match="unknown VNF"):
            engine.fail_instance("ghost", 0)
        with pytest.raises(SchedulingError, match="no instance"):
            engine.fail_instance("fw", 7)
        with pytest.raises(SchedulingError, match="no instance"):
            engine.recover_instance("fw", -1)

    def test_evict_unknown_id_raises(self, small_vnfs, small_caps):
        engine = DeploymentEngine(small_vnfs, small_caps)
        engine.admit(_request(0, ["fw"], 1.0))
        with pytest.raises(SchedulingError, match="unknown requests"):
            engine.evict(["q0", "ghost"])
        # The failed call was all-or-nothing.
        assert engine.active_requests == ("q0",)

    def test_move_vnf(self, small_vnfs, small_caps):
        engine = DeploymentEngine(
            small_vnfs, small_caps, target_utilization=None
        )
        engine.admit(_request(0, ["fw", "lb"], 10.0))
        source = engine.placement["fw"]
        other = next(n for n in small_caps if n != source)
        # Moving onto the current node is a trivial success.
        assert engine.move_vnf("fw", source)
        assert engine.placement["fw"] == source
        # A failed target refuses the move.
        engine.fail_node(other)
        assert not engine.move_vnf("fw", other)
        engine.recover_node(other)
        assert engine.move_vnf("fw", other)
        assert engine.placement["fw"] == other
        with pytest.raises(SchedulingError, match="unknown VNF"):
            engine.move_vnf("ghost", source)
        with pytest.raises(SchedulingError, match="unknown node"):
            engine.move_vnf("fw", "ghost")

    def test_move_vnf_checks_capacity(self, small_vnfs):
        # n1 cannot hold both VNFs (20 + 16 > 21).
        caps = {"n0": 40.0, "n1": 21.0}
        engine = DeploymentEngine(
            small_vnfs, caps, target_utilization=None
        )
        heavy, light = "fw", "lb"
        if engine.placement[heavy] != "n0":
            engine.move_vnf(heavy, "n0")
        engine.move_vnf(light, "n1")
        assert not engine.move_vnf(heavy, "n1")
        assert engine.placement[heavy] == "n0"

    def test_request_response_times(self, small_vnfs, small_caps):
        engine = DeploymentEngine(
            small_vnfs, small_caps, target_utilization=None
        )
        ids, latencies = engine.request_response_times()
        assert ids == ()
        engine.admit(_request(0, ["fw", "lb"], 10.0))
        ids, latencies = engine.request_response_times()
        assert ids == ("q0",)
        # One request on empty instances: 1/(mu - rate) per chain VNF.
        assert latencies[0] == pytest.approx(2.0 / 90.0)

    def test_saturated_instance_reports_inf(self, small_vnfs, small_caps):
        engine = DeploymentEngine(
            small_vnfs, small_caps, target_utilization=None
        )
        engine.admit(_request(0, ["fw"], 150.0))
        _, latencies = engine.request_response_times()
        assert np.isinf(latencies[0])


def _parity_workload():
    gen = WorkloadGenerator(np.random.default_rng(20170809))
    return gen.workload(num_vnfs=8, num_nodes=10, num_requests=24)


class TestMassDepartParity:
    """evict(subset) == the engine that never saw the victims.

    The docstring contract of :meth:`DeploymentEngine.evict`: because
    each eviction is the exact admit inverse, evicting ANY subset and
    re-solving leaves the engine bit-identical (placement + schedule)
    to one rebuilt from the survivors; the pre-rebalance residuals
    match a from-scratch recompute of the surviving schedule.
    """

    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_evict_subset_matches_rebuilt_engine(self, data):
        w = _parity_workload()
        engine = DeploymentEngine(
            w.vnfs, w.capacities, list(w.requests), seed=7,
            target_utilization=None,
        )
        ids = list(engine.active_requests)
        victims = data.draw(
            st.sets(st.sampled_from(ids), max_size=len(ids))
        )
        evicted = engine.evict(victims)
        # Returned in arrival order, exactly the requested set.
        assert [r.request_id for r in evicted] == [
            rid for rid in ids if rid in victims
        ]
        # Residual bookkeeping equals a from-scratch recompute over
        # the surviving schedule.
        state = engine.state()
        recomputed, _, _ = state.arrays().instance_rates(
            state.schedule_arrays()
        )
        np.testing.assert_allclose(
            engine.instance_loads(), recomputed, rtol=0, atol=1e-9
        )
        # After a re-solve the engine is indistinguishable from one
        # that never saw the evicted requests.
        engine.rebalance()
        survivors = [
            r for r in w.requests if r.request_id not in victims
        ]
        rebuilt = DeploymentEngine(
            w.vnfs, w.capacities, survivors, seed=7,
            target_utilization=None,
        )
        assert engine.placement == rebuilt.placement
        assert engine.state().schedule == rebuilt.state().schedule
        np.testing.assert_array_equal(
            engine.instance_loads(), rebuilt.instance_loads()
        )

    @given(data=st.data())
    @settings(max_examples=6, deadline=None)
    def test_evict_matches_sequential_departs(self, data):
        w = _parity_workload()
        mass = DeploymentEngine(
            w.vnfs, w.capacities, list(w.requests),
            target_utilization=None,
        )
        serial = DeploymentEngine(
            w.vnfs, w.capacities, list(w.requests),
            target_utilization=None,
        )
        ids = list(mass.active_requests)
        victims = data.draw(
            st.sets(st.sampled_from(ids), min_size=1, max_size=len(ids))
        )
        mass.evict(victims)
        # Same arrival-order retraction sequence as evict's internals —
        # float subtraction is order-sensitive, the semantics are not.
        for rid in (i for i in ids if i in victims):
            serial.depart(rid)
        assert mass.active_requests == serial.active_requests
        np.testing.assert_array_equal(
            mass.instance_loads(), serial.instance_loads()
        )
        assert dict(mass.state().schedule) == dict(
            serial.state().schedule
        )
