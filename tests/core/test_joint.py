"""Unit and integration tests for the two-phase joint optimizer."""

import numpy as np
import pytest

from repro.core.joint import JointOptimizer
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.cga import CGAScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator


@pytest.fixture
def small_instance():
    vnfs = [
        VNF("fw", 5.0, 2, 100.0),
        VNF("nat", 3.0, 2, 200.0),
    ]
    chain = ServiceChain(["fw", "nat"])
    requests = [
        Request(f"r{i}", chain, rate)
        for i, rate in enumerate([20.0, 30.0, 10.0, 25.0])
    ]
    capacities = {"n0": 12.0, "n1": 10.0, "n2": 8.0}
    return vnfs, requests, capacities


class TestDefaults:
    def test_default_algorithms(self):
        opt = JointOptimizer()
        assert isinstance(opt.placement_algorithm, BFDSUPlacement)
        assert isinstance(opt.scheduling_algorithm, RCKKScheduler)

    def test_custom_algorithms(self):
        opt = JointOptimizer(
            placement=BFDPlacement(), scheduler=CGAScheduler()
        )
        assert isinstance(opt.placement_algorithm, BFDPlacement)
        assert isinstance(opt.scheduling_algorithm, CGAScheduler)


class TestOptimize:
    def test_produces_valid_state(self, small_instance):
        vnfs, requests, capacities = small_instance
        opt = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(0))
        )
        solution = opt.optimize(vnfs, requests, capacities)
        solution.state.validate()

    def test_all_requests_scheduled(self, small_instance):
        vnfs, requests, capacities = small_instance
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(0))
        ).optimize(vnfs, requests, capacities)
        for request in requests:
            for vnf_name in request.chain:
                assert (request.request_id, vnf_name) in solution.schedule

    def test_evaluation_report(self, small_instance):
        vnfs, requests, capacities = small_instance
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(0))
        ).optimize(vnfs, requests, capacities)
        report = solution.evaluate()
        assert 0.0 < report.average_node_utilization <= 1.0
        assert report.nodes_in_service >= 1
        assert report.average_response_latency > 0.0

    def test_link_latency_flows_to_objective(self, small_instance):
        vnfs, requests, capacities = small_instance
        base = JointOptimizer(
            placement=BFDPlacement(), link_latency=0.0
        ).optimize(vnfs, requests, capacities)
        expensive = JointOptimizer(
            placement=BFDPlacement(), link_latency=1.0
        ).optimize(vnfs, requests, capacities)
        r0 = base.evaluate()
        r1 = expensive.evaluate()
        if r1.nodes_in_service > 1:
            assert r1.average_total_latency > r0.average_total_latency

    def test_chains_forwarded_to_placement(self, small_instance):
        vnfs, requests, capacities = small_instance
        solution = JointOptimizer(
            placement=BFDPlacement()
        ).optimize(vnfs, requests, capacities)
        assert len(solution.placement_result.problem.chains) == 1


class TestEndToEnd:
    def test_generated_workload_roundtrip(self):
        gen = WorkloadGenerator(np.random.default_rng(3))
        w = gen.workload(num_vnfs=8, num_nodes=6, num_requests=30)
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(1))
        ).optimize(w.vnfs, w.requests, w.capacities)
        report = solution.evaluate()
        assert report.nodes_in_service <= 6
        assert report.rejection_rate <= 1.0

    def test_bfdsu_rckk_beats_baselines_on_utilization(self):
        from repro.placement.ffd import FFDPlacement

        gen = WorkloadGenerator(np.random.default_rng(4))
        utils = {"bfdsu": [], "ffd": []}
        for rep in range(5):
            w = gen.workload(num_vnfs=10, num_nodes=8, num_requests=40)
            for key, placement in (
                ("bfdsu", BFDSUPlacement(rng=np.random.default_rng(rep))),
                ("ffd", FFDPlacement()),
            ):
                solution = JointOptimizer(placement=placement).optimize(
                    w.vnfs, w.requests, w.capacities
                )
                utils[key].append(
                    solution.evaluate().average_node_utilization
                )
        assert np.mean(utils["bfdsu"]) > np.mean(utils["ffd"])
