"""Golden parity: vectorized metrics vs the pre-refactor scalar paths.

The columnar :mod:`repro.core.arrays` refactor re-implemented every hot
metric as numpy segment sums while promising bit-comparable results.
These tests keep the pre-refactor scalar implementations as
``_reference_*`` helpers and assert the vectorized public APIs agree to
1e-12 relative error on randomized scenarios across seeds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.evaluation import evaluate_deployment
from repro.core.joint import JointOptimizer
from repro.core.local_search import total_inter_node_hops
from repro.core.objectives import (
    average_response_latency,
    per_request_response_time,
    total_latency,
)
from repro.nfv.request import Request
from repro.scheduling.base import SchedulingProblem
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator

RTOL = 1e-12

SEEDS = [7, 99, 20170605]


# ----------------------------------------------------------------------
# Pre-refactor scalar implementations (verbatim semantics)
# ----------------------------------------------------------------------
def _reference_average_node_utilization(state):
    used = state.nodes_in_service()
    if not used:
        return 0.0
    return sum(state.node_utilization(v) for v in used) / len(used)


def _reference_average_response_latency(state):
    serving = [inst for inst in state.instances() if inst.requests]
    if not all(inst.is_stable for inst in serving):
        return math.inf
    return sum(inst.mean_response_time for inst in serving) / len(serving)


def _reference_per_request_response_time(state):
    instance_w = {}
    for inst in state.instances():
        if inst.requests:
            instance_w[inst.key] = (
                inst.mean_response_time if inst.is_stable else math.inf
            )
    totals = {}
    for request in state.requests:
        total = 0.0
        for vnf_name in request.chain:
            k = state.schedule.get((request.request_id, vnf_name))
            total += instance_w[(vnf_name, k)]
        totals[request.request_id] = total
    return totals


def _reference_total_latency(state, link_latency):
    response = _reference_per_request_response_time(state)
    total = 0.0
    for request in state.requests:
        hops = state.inter_node_hops(request.request_id)
        total += response[request.request_id] + hops * link_latency
    return total


def _reference_node_loads(result):
    loads = {}
    for vnf in result.problem.vnfs:
        node = result.placement.get(vnf.name)
        if node is None:
            continue
        loads[node] = loads.get(node, 0.0) + vnf.total_demand
    return loads


def _reference_average_utilization(result):
    loads = _reference_node_loads(result)
    if not loads:
        return 0.0
    total = 0.0
    for node, load in loads.items():
        capacity = result.problem.capacities[node]
        total += load / capacity if capacity > 0 else 0.0
    return total / len(loads)


def _reference_instance_rates(result):
    rates = [0.0] * result.problem.vnf.num_instances
    for request in result.problem.requests:
        k = result.assignment[request.request_id]
        rates[k] += request.effective_rate
    return rates


def _reference_evaluate_no_admission(state, link_latency):
    serving = [inst for inst in state.instances() if inst.requests]
    if serving and all(i.is_stable for i in serving):
        avg_w = sum(i.mean_response_time for i in serving) / len(serving)
    else:
        avg_w = math.inf
    max_util = max((i.utilization for i in serving), default=0.0)
    if math.isfinite(avg_w):
        tot = _reference_total_latency(state, link_latency)
        avg_tot = tot / len(state.requests) if state.requests else 0.0
    else:
        tot = math.inf
        avg_tot = math.inf
    return {
        "average_node_utilization": _reference_average_node_utilization(state),
        "nodes_in_service": len(state.nodes_in_service()),
        "resource_occupation": sum(
            state.node_capacities[v] for v in state.nodes_in_service()
        ),
        "average_response_latency": avg_w,
        "max_instance_utilization": max_util,
        "total_latency": tot,
        "average_total_latency": avg_tot,
    }


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------
def _close(a, b):
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= RTOL * max(abs(a), abs(b), 1.0)


def _workload(seed, num_requests=60, stable=True):
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(
        num_vnfs=10,
        num_nodes=8,
        num_requests=num_requests,
        instance_range=(4, 10),
        delivery_probability=0.95,
    )
    if not stable:
        return w.vnfs, w.requests, w.capacities
    load = {f.name: 0.0 for f in w.vnfs}
    for r in w.requests:
        for name in r.chain:
            load[name] += r.effective_rate
    worst = max(
        load[f.name] / (f.num_instances * f.service_rate) for f in w.vnfs
    )
    scale = min(1.0, 0.7 / worst)
    requests = [
        Request(r.request_id, r.chain, r.arrival_rate * scale,
                r.delivery_probability)
        for r in w.requests
    ]
    return w.vnfs, requests, w.capacities


def _solved_state(seed, stable=True):
    vnfs, requests, capacities = _workload(seed, stable=stable)
    solution = JointOptimizer(scheduler=LeastLoadedScheduler()).optimize(
        vnfs, requests, capacities
    )
    return solution


# ----------------------------------------------------------------------
# Parity assertions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
class TestDeploymentMetricParity:
    def test_average_node_utilization(self, seed):
        state = _solved_state(seed).state
        assert _close(
            state.average_node_utilization(),
            _reference_average_node_utilization(state),
        )

    def test_total_nodes_in_service(self, seed):
        state = _solved_state(seed).state
        assert state.total_nodes_in_service() == len(state.nodes_in_service())

    def test_average_response_latency(self, seed):
        state = _solved_state(seed).state
        assert _close(
            average_response_latency(state),
            _reference_average_response_latency(state),
        )

    def test_per_request_response_time(self, seed):
        state = _solved_state(seed).state
        got = per_request_response_time(state)
        want = _reference_per_request_response_time(state)
        assert set(got) == set(want)
        assert all(_close(got[r], want[r]) for r in want)

    def test_total_latency(self, seed):
        state = _solved_state(seed).state
        assert _close(
            total_latency(state, 0.25),
            _reference_total_latency(state, 0.25),
        )

    def test_total_inter_node_hops(self, seed):
        state = _solved_state(seed).state
        assert total_inter_node_hops(state) == sum(
            state.inter_node_hops(r.request_id) for r in state.requests
        )

    def test_evaluate_deployment_full_report(self, seed):
        state = _solved_state(seed).state
        got = evaluate_deployment(state, link_latency=0.1,
                                  with_admission=False)
        want = _reference_evaluate_no_admission(state, 0.1)
        for field, expected in want.items():
            assert _close(getattr(got, field), expected), field

    def test_evaluate_unstable_reports_inf(self, seed):
        # Unscaled workloads overload some instance for every seed here.
        state = _solved_state(seed, stable=False).state
        got = evaluate_deployment(state, link_latency=0.1,
                                  with_admission=False)
        want = _reference_evaluate_no_admission(state, 0.1)
        for field, expected in want.items():
            assert _close(getattr(got, field), expected), field


@pytest.mark.parametrize("seed", SEEDS)
class TestPhaseResultParity:
    def test_placement_metrics(self, seed):
        result = _solved_state(seed).placement_result
        assert result.node_loads() == pytest.approx(
            _reference_node_loads(result), rel=RTOL
        )
        assert _close(
            result.average_utilization,
            _reference_average_utilization(result),
        )
        assert result.num_used_nodes == len(_reference_node_loads(result))
        assert _close(
            result.total_occupied_capacity,
            sum(
                result.problem.capacities[v]
                for v in _reference_node_loads(result)
            ),
        )

    def test_instance_rates(self, seed):
        vnfs, requests, _ = _workload(seed)
        vnf = max(
            vnfs, key=lambda f: sum(1 for r in requests if r.uses(f.name))
        )
        users = [r for r in requests if r.uses(vnf.name)]
        if not users:
            pytest.skip("no request uses the busiest VNF")
        for scheduler in (LeastLoadedScheduler(), RCKKScheduler()):
            result = scheduler.schedule(
                SchedulingProblem(vnf=vnf, requests=users)
            )
            got = result.instance_rates()
            want = _reference_instance_rates(result)
            assert len(got) == len(want)
            assert all(_close(g, w) for g, w in zip(got, want))
