"""Property-based tests for the online scheduler (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online import OnlineScheduler
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

CHAIN = ServiceChain(["fw"])

# A random event script: (is_arrival, rate_or_victim_fraction).
events_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)
instances_strategy = st.integers(min_value=1, max_value=6)
rebalance_strategy = st.integers(min_value=0, max_value=7)


def _drive(events, num_instances, rebalance_every):
    """Replay an event script; returns (scheduler, active request map)."""
    vnf = VNF("fw", 1.0, num_instances, 1e6)
    scheduler = OnlineScheduler(vnf, rebalance_every=rebalance_every)
    active = {}
    counter = 0
    for is_arrival, x in events:
        if is_arrival or not active:
            rid = f"r{counter}"
            counter += 1
            request = Request(rid, CHAIN, 1.0 + 99.0 * x)
            scheduler.arrive(request)
            active[rid] = request
        else:
            victim = sorted(active)[int(x * len(active))]
            scheduler.depart(victim)
            del active[victim]
    return scheduler, active


@given(
    events=events_strategy,
    instances=instances_strategy,
    rebalance=rebalance_strategy,
)
@settings(max_examples=40, deadline=None)
def test_loads_always_equal_assigned_rates(events, instances, rebalance):
    """Invariant: tracked loads == sum of active requests per instance."""
    scheduler, active = _drive(events, instances, rebalance)
    expected = [0.0] * instances
    for rid, request in active.items():
        expected[scheduler.assignment_of(rid)] += request.effective_rate
    for tracked, recomputed in zip(scheduler.instance_rates(), expected):
        assert tracked == pytest.approx(recomputed, abs=1e-9)


@given(
    events=events_strategy,
    instances=instances_strategy,
    rebalance=rebalance_strategy,
)
@settings(max_examples=40, deadline=None)
def test_active_count_consistent(events, instances, rebalance):
    scheduler, active = _drive(events, instances, rebalance)
    assert scheduler.active_requests == len(active)


@given(events=events_strategy, instances=instances_strategy)
@settings(max_examples=30, deadline=None)
def test_rebalance_never_increases_spread(events, instances):
    scheduler, _ = _drive(events, instances, rebalance_every=0)
    before = scheduler.spread()
    scheduler.rebalance()
    assert scheduler.spread() <= before + 1e-9
