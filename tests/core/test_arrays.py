"""Unit tests for the columnar scenario core (``repro.core.arrays``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays, cached_arrays
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.scheduling.base import SchedulingProblem


@pytest.fixture
def vnfs():
    return [
        VNF("fw", demand_per_instance=10.0, num_instances=2,
            service_rate=100.0),
        VNF("nat", demand_per_instance=5.0, num_instances=3,
            service_rate=200.0),
        VNF("lb", demand_per_instance=8.0, num_instances=1,
            service_rate=150.0),
    ]


@pytest.fixture
def requests():
    chain_a = ServiceChain(["fw", "nat"])
    chain_b = ServiceChain(["nat", "lb"])
    return [
        Request("r0", chain_a, 10.0, delivery_probability=0.5),
        Request("r1", chain_b, 20.0),
        Request("r2", chain_a, 30.0),
    ]


@pytest.fixture
def capacities():
    return {"n0": 50.0, "n1": 40.0, "n2": 30.0}


@pytest.fixture
def arrays(vnfs, requests, capacities):
    return ScenarioArrays.build(vnfs, requests, capacities)


class TestColumns:
    def test_vnf_columns(self, arrays):
        assert arrays.vnf_names == ("fw", "nat", "lb")
        assert arrays.M_f.tolist() == [2, 3, 1]
        assert arrays.mu_f.tolist() == [100.0, 200.0, 150.0]
        assert arrays.total_demand_f.tolist() == [20.0, 15.0, 8.0]

    def test_global_instance_index(self, arrays):
        # fw -> [0, 2), nat -> [2, 5), lb -> [5, 6).
        assert arrays.instance_offset.tolist() == [0, 2, 5, 6]
        assert arrays.num_instances == 6
        assert arrays.inst_vnf.tolist() == [0, 0, 1, 1, 1, 2]
        assert arrays.mu_inst.tolist() == [100.0] * 2 + [200.0] * 3 + [150.0]

    def test_request_columns(self, arrays):
        assert arrays.request_ids == ("r0", "r1", "r2")
        assert arrays.lambda_r.tolist() == [10.0, 20.0, 30.0]
        # Effective rate is lambda_r / P_r (loss feedback, Eq. 8).
        assert arrays.eff_rate.tolist() == [20.0, 20.0, 30.0]

    def test_chain_csr(self, arrays):
        assert arrays.chain_req.tolist() == [0, 0, 1, 1, 2, 2]
        assert arrays.chain_vnf.tolist() == [0, 1, 1, 2, 0, 1]
        assert arrays.chain_ptr.tolist() == [0, 2, 4, 6]
        assert not arrays.chain_has_unknown

    def test_unknown_chain_vnf_flagged(self, vnfs, capacities):
        ghost = Request("rx", ServiceChain(["ghost"]), 5.0)
        arrays = ScenarioArrays.build(vnfs, [ghost], capacities)
        assert arrays.chain_has_unknown
        assert arrays.chain_vnf.tolist() == [-1]
        assert arrays.chain_names == ("ghost",)


class TestPlacementVector:
    def test_maps_nodes_and_unplaced(self, arrays):
        vec = arrays.placement_vector({"fw": "n1", "nat": "n0"})
        assert vec.tolist() == [1, 0, -1]

    def test_unknown_node_raises_keyerror(self, arrays):
        with pytest.raises(KeyError):
            arrays.placement_vector({"fw": "mars"})

    def test_node_loads_and_used_mask(self, arrays):
        vec = arrays.placement_vector(
            {"fw": "n0", "nat": "n0", "lb": "n2"}
        )
        assert arrays.node_loads(vec).tolist() == [35.0, 0.0, 8.0]
        assert arrays.used_node_mask(vec).tolist() == [True, False, True]


class TestScheduleArrays:
    def _sched(self, arrays):
        return arrays.schedule_arrays(
            {
                ("r0", "fw"): 0,
                ("r0", "nat"): 2,
                ("r1", "nat"): 0,
                ("r1", "lb"): 0,
                ("r2", "fw"): 1,
                ("r2", "nat"): 2,
            }
        )

    def test_global_instance_indices(self, arrays):
        sched = self._sched(arrays)
        by_entry = dict(zip(zip(sched.req.tolist(), sched.vnf.tolist()),
                            sched.inst.tolist()))
        assert by_entry[(0, 0)] == 0      # fw k=0
        assert by_entry[(0, 1)] == 4      # nat k=2 -> offset 2 + 2
        assert by_entry[(1, 2)] == 5      # lb k=0 -> offset 5
        assert by_entry[(2, 0)] == 1      # fw k=1

    def test_unknown_request_rejected(self, arrays):
        with pytest.raises(ValidationError, match="unknown request"):
            arrays.schedule_arrays({("nope", "fw"): 0})

    def test_out_of_range_instance_rejected(self, arrays):
        with pytest.raises(ValidationError, match="unknown instance"):
            arrays.schedule_arrays({("r0", "fw"): 2})

    def test_instance_rates_segment_sums(self, arrays):
        sched = self._sched(arrays)
        equivalent, external, counts = arrays.instance_rates(sched)
        # nat k=2 (global 4) serves r0 (eff 20) and r2 (eff 30).
        assert equivalent.tolist() == [20.0, 30.0, 20.0, 0.0, 50.0, 20.0]
        assert external.tolist() == [10.0, 30.0, 20.0, 0.0, 40.0, 20.0]
        assert counts.tolist() == [1, 1, 1, 0, 2, 1]

    def test_response_times_flag_idle_and_unstable(self, arrays):
        w = arrays.instance_response_times(
            np.array([50.0, 0.0, 250.0, 0.0, 50.0, 20.0]),
            np.array([40.0, 0.0, 250.0, 0.0, 40.0, 20.0]),
        )
        assert w[0] == pytest.approx((0.5 / 0.5) / 40.0)
        assert np.isnan(w[1])        # idle instance
        assert np.isinf(w[2])        # rho = 250/200 >= 1 on nat

    def test_chain_instances_lookup(self, arrays):
        sched = self._sched(arrays)
        inst = arrays.chain_instances(sched)
        assert inst.tolist() == [0, 4, 2, 5, 1, 4]

    def test_chain_instances_missing_entry(self, arrays):
        sched = arrays.schedule_arrays({("r0", "fw"): 0})
        inst = arrays.chain_instances(sched)
        assert inst[0] == 0
        assert (inst[1:] == -1).all()

    def test_response_per_request_missing_raises(self, arrays):
        sched = arrays.schedule_arrays({("r0", "fw"): 0})
        w = np.zeros(arrays.num_instances)
        with pytest.raises(SchedulingError, match="unscheduled on"):
            arrays.response_per_request(sched, w)


class TestHops:
    def test_consecutive_duplicates_collapse(self, arrays):
        # r0: fw@n0 -> nat@n0 = 0 hops; r1: nat@n0 -> lb@n2 = 1 hop;
        # r2: fw@n0 -> nat@n0 = 0 hops.
        vec = arrays.placement_vector({"fw": "n0", "nat": "n0", "lb": "n2"})
        assert arrays.hops_per_request(vec).tolist() == [0, 1, 0]

    def test_matches_state_inter_node_hops(self, vnfs, requests, capacities):
        placement = {"fw": "n1", "nat": "n0", "lb": "n1"}
        state = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities=capacities,
            placement=placement,
        )
        arrays = state.arrays()
        vec = arrays.placement_vector(placement)
        hops = arrays.hops_per_request(vec)
        for i, request in enumerate(requests):
            assert hops[i] == state.inter_node_hops(request.request_id)


class TestCaching:
    def test_cached_on_deployment_state(self, vnfs, requests, capacities):
        state = DeploymentState(
            vnfs=vnfs, requests=requests, node_capacities=capacities
        )
        assert state.arrays() is state.arrays()
        first = state.arrays()
        state.invalidate_arrays()
        assert state.arrays() is not first

    def test_schedule_cache_tracks_dict_size(self, vnfs, requests, capacities):
        state = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities=capacities,
            schedule={("r0", "fw"): 0},
        )
        first = state.schedule_arrays()
        assert state.schedule_arrays() is first
        state.schedule[("r0", "nat")] = 1
        second = state.schedule_arrays()
        assert second is not first
        assert len(second) == 2

    def test_cached_on_frozen_problems(self, vnfs, requests, capacities):
        problem = PlacementProblem(vnfs=vnfs, capacities=capacities)
        assert problem.arrays() is problem.arrays()
        sched_problem = SchedulingProblem(vnf=vnfs[0], requests=requests[:1])
        assert sched_problem.arrays() is sched_problem.arrays()

    def test_cached_arrays_builds_once(self, vnfs, requests, capacities):
        class Owner:
            pass

        calls = []

        def builder(owner):
            calls.append(owner)
            return ScenarioArrays.build(vnfs, requests, capacities)

        owner = Owner()
        first = cached_arrays(owner, builder)
        assert cached_arrays(owner, builder) is first
        assert len(calls) == 1


class TestInvertedChainViews:
    """The PR-3 delta-evaluation CSRs (see docs/ARRAYS_CORE.md)."""

    def test_vnf_requests_csr(self, arrays):
        ptr, req = arrays.vnf_requests()
        # fw: r0, r2; nat: r0, r1, r2; lb: r1 (deduplicated, ascending).
        assert ptr.tolist() == [0, 2, 5, 6]
        assert req.tolist() == [0, 2, 0, 1, 2, 1]

    def test_vnf_requests_skips_unknown(self, vnfs, capacities):
        ghost = Request("rx", ServiceChain(["ghost", "fw"]), 5.0)
        arrays = ScenarioArrays.build(vnfs, [ghost], capacities)
        ptr, req = arrays.vnf_requests()
        assert ptr.tolist() == [0, 1, 1, 1]
        assert req.tolist() == [0]

    def test_vnf_chain_neighbors_csr(self, arrays):
        ptr, nbr = arrays.vnf_chain_neighbors()
        # Transitions: r0 fw-nat, r1 nat-lb, r2 fw-nat.  Each side of a
        # pair owns the other with multiplicity.
        assert ptr.tolist() == [0, 2, 5, 6]
        assert nbr.tolist() == [1, 1, 2, 0, 0, 1]

    def test_vnf_chain_neighbors_short_chain(self, vnfs, capacities):
        single = Request("r0", ServiceChain(["fw"]), 5.0)
        arrays = ScenarioArrays.build(vnfs, [single], capacities)
        ptr, nbr = arrays.vnf_chain_neighbors()
        assert ptr.tolist() == [0, 0, 0, 0]
        assert len(nbr) == 0

    def test_csrs_are_cached(self, arrays):
        assert arrays.vnf_requests() is arrays.vnf_requests()
        assert arrays.vnf_chain_neighbors() is arrays.vnf_chain_neighbors()
        assert arrays.node_str_rank() is arrays.node_str_rank()

    def test_node_str_rank_orders_by_string(self, vnfs, requests):
        arrays = ScenarioArrays.build(
            vnfs, requests, {"n10": 50.0, "n2": 40.0}
        )
        # str order: "n10" < "n2", so n10 ranks 0 and n2 ranks 1.
        assert arrays.node_str_rank().tolist() == [0, 1]
