"""Unit tests for the Eq. (16) local-search refinement."""

import pytest

from repro.core.local_search import (
    refine_placement,
    total_inter_node_hops,
)
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF


def _state(placement, capacities=None):
    vnfs = [VNF("fw", 5.0, 1, 1000.0), VNF("nat", 5.0, 1, 1000.0)]
    chain = ServiceChain(["fw", "nat"])
    requests = [Request("r0", chain, 10.0), Request("r1", chain, 20.0)]
    caps = capacities or {"n0": 20.0, "n1": 20.0}
    return DeploymentState(
        vnfs=vnfs,
        requests=requests,
        node_capacities=caps,
        placement=placement,
        schedule={
            ("r0", "fw"): 0, ("r0", "nat"): 0,
            ("r1", "fw"): 0, ("r1", "nat"): 0,
        },
    )


class TestHopCounting:
    def test_split_chain_pays_per_request(self):
        state = _state({"fw": "n0", "nat": "n1"})
        assert total_inter_node_hops(state) == 2  # both requests hop once

    def test_colocated_pays_nothing(self):
        state = _state({"fw": "n0", "nat": "n0"})
        assert total_inter_node_hops(state) == 0


class TestRefinement:
    def test_consolidates_split_chain(self):
        state = _state({"fw": "n0", "nat": "n1"})
        report = refine_placement(state)
        assert report.improved
        assert report.final_hops == 0
        assert report.hops_saved == 2
        # Both VNFs now share a node.
        assert state.placement["fw"] == state.placement["nat"]
        state.validate()

    def test_already_optimal_is_noop(self):
        state = _state({"fw": "n0", "nat": "n0"})
        report = refine_placement(state)
        assert not report.improved
        assert report.hops_saved == 0
        assert state.placement == {"fw": "n0", "nat": "n0"}

    def test_respects_capacity(self):
        # Nodes too small to co-locate: no move possible.
        state = _state(
            {"fw": "n0", "nat": "n1"},
            capacities={"n0": 6.0, "n1": 6.0},
        )
        report = refine_placement(state)
        assert not report.improved
        assert state.placement == {"fw": "n0", "nat": "n1"}

    def test_schedule_untouched(self):
        state = _state({"fw": "n0", "nat": "n1"})
        before = dict(state.schedule)
        refine_placement(state)
        assert state.schedule == before

    def test_bad_rounds(self):
        state = _state({"fw": "n0", "nat": "n0"})
        with pytest.raises(ValidationError):
            refine_placement(state, max_rounds=0)

    def test_three_node_chain_consolidation(self):
        vnfs = [VNF(n, 3.0, 1, 1000.0) for n in ("a", "b", "c")]
        chain = ServiceChain(["a", "b", "c"])
        requests = [Request("r0", chain, 5.0)]
        state = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities={"n0": 10.0, "n1": 10.0, "n2": 10.0},
            placement={"a": "n0", "b": "n1", "c": "n2"},
            schedule={("r0", v): 0 for v in ("a", "b", "c")},
        )
        report = refine_placement(state)
        assert report.final_hops == 0
        nodes = {state.placement[v] for v in ("a", "b", "c")}
        assert len(nodes) == 1
