"""Unit tests for the end-to-end deployment evaluation."""

import math

import pytest

from repro.core.evaluation import evaluate_deployment
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF


def _state(mu=100.0, rates=(20.0, 30.0), capacity=20.0):
    vnfs = [VNF("fw", 10.0, 1, mu)]
    chain = ServiceChain(["fw"])
    requests = [
        Request(f"r{i}", chain, rate) for i, rate in enumerate(rates)
    ]
    return DeploymentState(
        vnfs=vnfs,
        requests=requests,
        node_capacities={"n0": capacity},
        placement={"fw": "n0"},
        schedule={(f"r{i}", "fw"): 0 for i in range(len(rates))},
    )


class TestStableDeployment:
    def test_full_report(self):
        report = evaluate_deployment(_state(), link_latency=0.0)
        assert report.average_node_utilization == pytest.approx(0.5)
        assert report.nodes_in_service == 1
        assert report.resource_occupation == pytest.approx(20.0)
        # One instance at 50/100: W = 1/50.
        assert report.average_response_latency == pytest.approx(0.02)
        assert report.max_instance_utilization == pytest.approx(0.5)
        assert report.num_rejected == 0
        assert report.is_stable()

    def test_total_latency_counts_each_request(self):
        report = evaluate_deployment(_state(), link_latency=0.0)
        # Both requests pass the same single instance.
        assert report.total_latency == pytest.approx(2 * 0.02)
        assert report.average_total_latency == pytest.approx(0.02)


class TestOverloadedDeployment:
    def test_admission_sheds_and_reports(self):
        report = evaluate_deployment(
            _state(mu=40.0), link_latency=0.0, with_admission=True
        )
        assert report.num_rejected == 1
        assert report.rejection_rate == pytest.approx(0.5)
        assert math.isfinite(report.average_response_latency)

    def test_without_admission_inf(self):
        report = evaluate_deployment(
            _state(mu=40.0), link_latency=0.0, with_admission=False
        )
        assert math.isinf(report.average_response_latency)
        assert report.num_rejected == 0
        assert not report.is_stable()

    def test_validation_runs_first(self):
        state = _state()
        state.placement.clear()
        with pytest.raises(Exception):
            evaluate_deployment(state)
