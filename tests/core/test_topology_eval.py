"""Unit tests for topology-aware Eq. (16) evaluation."""

import pytest

from repro.core.objectives import total_latency
from repro.core.topology_eval import (
    average_total_latency_on_topology,
    communication_breakdown,
    total_latency_on_topology,
)
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF
from repro.topology.graph import DatacenterTopology


@pytest.fixture
def fabric():
    """s0 - sw - s1, with 1 ms per link (2 ms server to server)."""
    topo = DatacenterTopology()
    topo.add_compute_node("s0", 50.0)
    topo.add_compute_node("s1", 50.0)
    topo.add_switch("sw")
    topo.add_link("s0", "sw", latency=1e-3)
    topo.add_link("sw", "s1", latency=1e-3)
    return topo


def _state(placement):
    vnfs = [VNF("fw", 10.0, 1, 100.0), VNF("nat", 10.0, 1, 100.0)]
    chain = ServiceChain(["fw", "nat"])
    requests = [Request("r0", chain, 20.0)]
    return DeploymentState(
        vnfs=vnfs,
        requests=requests,
        node_capacities={"s0": 50.0, "s1": 50.0},
        placement=placement,
        schedule={("r0", "fw"): 0, ("r0", "nat"): 0},
    )


class TestTotalLatency:
    def test_cross_fabric_pays_path_latency(self, fabric):
        state = _state({"fw": "s0", "nat": "s1"})
        measured = total_latency_on_topology(state, fabric)
        flat = total_latency(state, link_latency=0.0)
        # Path s0 -> sw -> s1 is 2 ms.
        assert measured == pytest.approx(flat + 2e-3)

    def test_colocated_pays_nothing(self, fabric):
        state = _state({"fw": "s0", "nat": "s0"})
        assert total_latency_on_topology(state, fabric) == pytest.approx(
            total_latency(state, link_latency=0.0)
        )

    def test_average(self, fabric):
        state = _state({"fw": "s0", "nat": "s1"})
        assert average_total_latency_on_topology(
            state, fabric
        ) == pytest.approx(total_latency_on_topology(state, fabric))

    def test_unknown_node_rejected(self, fabric):
        state = _state({"fw": "ghost", "nat": "s1"})
        state.node_capacities = {"ghost": 50.0, "s1": 50.0}
        with pytest.raises(ValidationError):
            total_latency_on_topology(state, fabric)


class TestBreakdown:
    def test_per_request(self, fabric):
        state = _state({"fw": "s0", "nat": "s1"})
        breakdown = communication_breakdown(state, fabric)
        assert breakdown == {"r0": pytest.approx(2e-3)}
