"""Dtype-policy tests: lean int32/float32 columns vs the defaults.

Index columns must stay *exact* under the lean policy (guarded against
overflow at construction); float columns carry single-precision
rounding pinned here at explicit tolerances.  The default policy must
remain byte-identical to the historical columns — the existing parity
suites enforce that transitively, but the identity checks here fail
fast if a dtype leaks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.core.dtypes import (
    DEFAULT_POLICY,
    LEAN_POLICY,
    DtypePolicy,
    ensure_index_capacity,
    resolve_policy,
)
from repro.core.evaluation import evaluate_deployment
from repro.core.joint import JointOptimizer
from repro.exceptions import ValidationError
from repro.nfv.state import DeploymentState
from repro.placement.bfdsu import BFDSUPlacement
from repro.sim.kernels import fcfs_sojourn_times, lindley_departure_times
from repro.workload.generator import WorkloadGenerator


@pytest.fixture
def workload():
    gen = WorkloadGenerator(rng=np.random.default_rng(7))
    return gen.workload(num_vnfs=8, num_nodes=12, num_requests=40)


INDEX_COLUMNS = (
    "M_f", "instance_offset", "inst_vnf", "chain_req", "chain_vnf",
    "chain_ptr",
)
FLOAT_COLUMNS = (
    "D_f", "mu_f", "total_demand_f", "A_v", "lambda_r", "P_r",
    "eff_rate", "mu_inst",
)


class TestPolicyObjects:
    def test_resolve_none_is_default(self):
        assert resolve_policy(None) is DEFAULT_POLICY

    def test_resolve_passthrough(self):
        assert resolve_policy(LEAN_POLICY) is LEAN_POLICY

    def test_resolve_rejects_raw_dtypes(self):
        with pytest.raises(ValidationError):
            resolve_policy(np.int32)

    def test_policy_validates_kinds(self):
        with pytest.raises(ValidationError):
            DtypePolicy(np.dtype(np.uint32), np.dtype(np.float64))
        with pytest.raises(ValidationError):
            DtypePolicy(np.dtype(np.int64), np.dtype(np.int64))

    def test_capacity_guard(self):
        ensure_index_capacity(2**31 - 1, np.int32, "ok")
        with pytest.raises(ValidationError, match="chain CSR"):
            ensure_index_capacity(2**31, np.int32, "chain CSR table")


class TestLeanColumns:
    def test_default_dtypes_unchanged(self, workload):
        arr = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        for name in INDEX_COLUMNS:
            assert getattr(arr, name).dtype == np.int64, name
        for name in FLOAT_COLUMNS:
            assert getattr(arr, name).dtype == np.float64, name
        assert arr.index_dtype == np.int64
        assert arr.float_dtype == np.float64

    def test_lean_index_columns_exact(self, workload):
        ref = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        lean = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        for name in INDEX_COLUMNS:
            col = getattr(lean, name)
            assert col.dtype == np.int32, name
            np.testing.assert_array_equal(
                col.astype(np.int64), getattr(ref, name), err_msg=name
            )

    def test_lean_float_columns_close(self, workload):
        ref = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities
        )
        lean = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        for name in FLOAT_COLUMNS:
            col = getattr(lean, name)
            assert col.dtype == np.float32, name
            np.testing.assert_allclose(
                col.astype(np.float64), getattr(ref, name),
                rtol=1e-6, err_msg=name,
            )

    def test_schedule_arrays_follow_policy(self, workload):
        lean = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(3))
        ).optimize(
            workload.vnfs, workload.requests, workload.capacities
        )
        sched = lean.schedule_arrays(solution.schedule)
        assert sched.req.dtype == np.int32
        assert sched.vnf.dtype == np.int32
        assert sched.k.dtype == np.int32

    def test_mutation_keeps_lean_dtypes(self, workload):
        lean = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        req = workload.requests[0]
        extra = type(req)(
            request_id="extra",
            chain=req.chain,
            arrival_rate=5.0,
            delivery_probability=1.0,
        )
        row = lean.append_request(extra)
        assert row == len(workload.requests)
        assert lean.lambda_r.dtype == np.float32
        assert lean.chain_req.dtype == np.int32
        assert lean.lambda_r[row] == np.float32(5.0)


class TestLeanEndToEnd:
    def test_evaluation_close_to_default(self, workload):
        solution = JointOptimizer(
            placement=BFDSUPlacement(rng=np.random.default_rng(11))
        ).optimize(
            workload.vnfs, workload.requests, workload.capacities
        )
        state = solution.state
        ref = evaluate_deployment(state)
        lean_arrays = ScenarioArrays.build(
            workload.vnfs, workload.requests, workload.capacities,
            dtypes=LEAN_POLICY,
        )
        # Seed the state's column cache with the lean build so the
        # whole evaluation pipeline runs on int32/float32 columns.
        state.invalidate_arrays()
        state._scenario_arrays = lean_arrays
        lean = evaluate_deployment(state)
        assert lean.total_latency == pytest.approx(
            ref.total_latency, rel=1e-5
        )
        assert lean.average_response_latency == pytest.approx(
            ref.average_response_latency, rel=1e-5
        )
        assert lean.nodes_in_service == ref.nodes_in_service
        assert lean.num_rejected == ref.num_rejected

    def test_sim_kernels_preserve_float32(self):
        rng = np.random.default_rng(0)
        A64 = np.sort(rng.uniform(0.0, 10.0, size=256))
        S64 = rng.uniform(0.01, 0.1, size=256)
        D64 = lindley_departure_times(A64, S64)
        D32 = lindley_departure_times(
            A64.astype(np.float32), S64.astype(np.float32)
        )
        assert D32.dtype == np.float32
        np.testing.assert_allclose(D32, D64, rtol=1e-5)
        W32 = fcfs_sojourn_times(
            A64.astype(np.float32), S64.astype(np.float32), horizon=9.0
        )
        assert W32.dtype == np.float32
        W64 = fcfs_sojourn_times(A64, S64, horizon=9.0)
        assert len(W32) == len(W64)


class TestOverflowGuards:
    def test_build_rejects_oversized_chain_table(self, workload):
        tiny = DtypePolicy(np.dtype(np.int8), np.dtype(np.float32))
        with pytest.raises(ValidationError, match="int8"):
            ScenarioArrays.build(
                workload.vnfs, workload.requests * 10, workload.capacities,
                dtypes=tiny,
            )

    def test_instance_count_guarded_before_cumsum(self):
        from repro.nfv.vnf import VNF

        tiny = DtypePolicy(np.dtype(np.int8), np.dtype(np.float32))
        vnfs = [
            VNF(f"f{i}", demand_per_instance=1.0, num_instances=25,
                service_rate=10.0)
            for i in range(8)
        ]
        with pytest.raises(ValidationError, match="instance"):
            ScenarioArrays.build(vnfs, (), {"n0": 100.0}, dtypes=tiny)
