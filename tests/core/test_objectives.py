"""Unit tests for the paper's objective evaluators (Eqs. 13-16)."""

import math

import pytest

from repro.core import objectives
from repro.exceptions import SchedulingError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF


@pytest.fixture
def state():
    vnfs = [VNF("fw", 10.0, 1, 100.0), VNF("nat", 5.0, 1, 200.0)]
    chain = ServiceChain(["fw", "nat"])
    requests = [Request("r0", chain, 20.0), Request("r1", chain, 30.0)]
    return DeploymentState(
        vnfs=vnfs,
        requests=requests,
        node_capacities={"n0": 12.0, "n1": 8.0},
        placement={"fw": "n0", "nat": "n1"},
        schedule={
            ("r0", "fw"): 0,
            ("r0", "nat"): 0,
            ("r1", "fw"): 0,
            ("r1", "nat"): 0,
        },
    )


class TestPlacementObjectives:
    def test_average_utilization_eq13(self, state):
        # n0: 10/12, n1: 5/8.
        expected = (10.0 / 12.0 + 5.0 / 8.0) / 2.0
        assert objectives.average_node_utilization(state) == pytest.approx(
            expected
        )

    def test_nodes_in_service_eq14(self, state):
        assert objectives.total_nodes_in_service(state) == 2


class TestLatencyObjectives:
    def test_average_response_latency_eq15(self, state):
        # fw instance: 50/100 -> W = 1/50; nat: 50/200 -> W = 1/150.
        expected = (1.0 / 50.0 + 1.0 / 150.0) / 2.0
        assert objectives.average_response_latency(state) == pytest.approx(
            expected
        )

    def test_per_request_response(self, state):
        per = objectives.per_request_response_time(state)
        each = 1.0 / 50.0 + 1.0 / 150.0
        assert per["r0"] == pytest.approx(each)
        assert per["r1"] == pytest.approx(each)

    def test_total_latency_eq16(self, state):
        link = 1e-3
        each = 1.0 / 50.0 + 1.0 / 150.0
        # Each request crosses n0 -> n1: one inter-node hop.
        expected = 2 * (each + link)
        assert objectives.total_latency(state, link) == pytest.approx(expected)

    def test_average_total_latency(self, state):
        link = 1e-3
        assert objectives.average_total_latency(state, link) == pytest.approx(
            objectives.total_latency(state, link) / 2.0
        )

    def test_colocated_chain_pays_no_link_latency(self):
        vnfs = [VNF("fw", 1.0, 1, 100.0), VNF("nat", 1.0, 1, 100.0)]
        chain = ServiceChain(["fw", "nat"])
        requests = [Request("r0", chain, 10.0)]
        state = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities={"n0": 10.0},
            placement={"fw": "n0", "nat": "n0"},
            schedule={("r0", "fw"): 0, ("r0", "nat"): 0},
        )
        with_link = objectives.total_latency(state, 1.0)
        without_link = objectives.total_latency(state, 0.0)
        assert with_link == pytest.approx(without_link)

    def test_unstable_instance_gives_inf(self):
        vnfs = [VNF("fw", 1.0, 1, 10.0)]
        chain = ServiceChain(["fw"])
        requests = [Request("r0", chain, 20.0)]
        state = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities={"n0": 10.0},
            placement={"fw": "n0"},
            schedule={("r0", "fw"): 0},
        )
        assert math.isinf(objectives.average_response_latency(state))

    def test_no_serving_instances_raises(self):
        vnfs = [VNF("fw", 1.0, 1, 10.0)]
        state = DeploymentState(
            vnfs=vnfs,
            requests=[],
            node_capacities={"n0": 10.0},
            placement={"fw": "n0"},
            schedule={},
        )
        with pytest.raises(SchedulingError):
            objectives.average_response_latency(state)
