"""Mutation parity for ``ScenarioArrays.append_request/remove_request``.

The contract (docs/ARRAYS_CORE.md + docs/SERVING.md): after any
sequence of appends and removes, every request-derived column and both
cached CSR views match a from-scratch ``ScenarioArrays.build`` over the
surviving request sequence at 1e-12.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arrays import ScenarioArrays
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF


@pytest.fixture
def vnfs():
    return [
        VNF("fw", demand_per_instance=10.0, num_instances=2,
            service_rate=100.0),
        VNF("nat", demand_per_instance=5.0, num_instances=3,
            service_rate=200.0),
        VNF("lb", demand_per_instance=8.0, num_instances=1,
            service_rate=150.0),
    ]


@pytest.fixture
def capacities():
    return {"n0": 50.0, "n1": 40.0, "n2": 30.0}


def _request(i: int, names, rate: float, p: float = 1.0) -> Request:
    return Request(f"r{i}", ServiceChain(list(names)), rate,
                   delivery_probability=p)


def assert_matches_rebuild(arrays, vnfs, requests, capacities):
    """Every request-derived view == a fresh build over ``requests``."""
    fresh = ScenarioArrays.build(vnfs, requests, capacities)
    assert list(arrays.request_ids) == list(fresh.request_ids)
    assert dict(arrays.request_index) == dict(fresh.request_index)
    assert list(arrays.chain_names) == list(fresh.chain_names)
    assert arrays.chain_has_unknown == fresh.chain_has_unknown
    for column in ("lambda_r", "P_r", "eff_rate"):
        np.testing.assert_allclose(
            getattr(arrays, column), getattr(fresh, column),
            rtol=0, atol=1e-12, err_msg=column,
        )
    for column in ("chain_ptr", "chain_req", "chain_vnf"):
        np.testing.assert_array_equal(
            getattr(arrays, column), getattr(fresh, column), err_msg=column
        )
    # Cached CSR views must be rebuilt for the mutated request set.
    for csr in ("vnf_requests", "vnf_chain_neighbors"):
        got_ptr, got_idx = getattr(arrays, csr)()
        want_ptr, want_idx = getattr(fresh, csr)()
        np.testing.assert_array_equal(got_ptr, want_ptr, err_msg=csr)
        np.testing.assert_array_equal(got_idx, want_idx, err_msg=csr)


class TestAppend:
    def test_append_matches_rebuild_each_step(self, vnfs, capacities):
        pool = [
            _request(0, ["fw", "nat"], 10.0, 0.5),
            _request(1, ["nat", "lb"], 20.0),
            _request(2, ["fw", "nat", "lb"], 30.0, 0.8),
            _request(3, ["lb"], 5.0),
        ]
        arrays = ScenarioArrays.build(vnfs, [], capacities)
        live = []
        for request in pool:
            # Warm both caches so staleness would be visible.
            arrays.vnf_requests()
            arrays.vnf_chain_neighbors()
            idx = arrays.append_request(request)
            assert idx == len(live)
            live.append(request)
            assert_matches_rebuild(arrays, vnfs, live, capacities)

    def test_effective_rate_division_is_exact(self, vnfs, capacities):
        arrays = ScenarioArrays.build(vnfs, [], capacities)
        request = _request(0, ["fw"], 37.0, 0.7)
        arrays.append_request(request)
        # Same IEEE division as build — bit-equal, not just close.
        assert arrays.eff_rate[0] == np.float64(37.0) / np.float64(0.7)

    def test_duplicate_id_rejected(self, vnfs, capacities):
        arrays = ScenarioArrays.build(
            vnfs, [_request(0, ["fw"], 1.0)], capacities
        )
        with pytest.raises(ValidationError):
            arrays.append_request(_request(0, ["nat"], 2.0))

    def test_unknown_vnf_sets_flag(self, vnfs, capacities):
        arrays = ScenarioArrays.build(
            vnfs, [_request(0, ["fw"], 1.0)], capacities
        )
        assert not arrays.chain_has_unknown
        arrays.append_request(_request(1, ["ghost"], 1.0))
        assert arrays.chain_has_unknown
        assert arrays.chain_vnf[-1] == -1


class TestRemove:
    def test_remove_matches_rebuild_each_step(self, vnfs, capacities):
        pool = [
            _request(0, ["fw", "nat"], 10.0, 0.5),
            _request(1, ["nat", "lb"], 20.0),
            _request(2, ["fw", "nat", "lb"], 30.0, 0.8),
            _request(3, ["lb"], 5.0),
            _request(4, ["fw"], 7.0),
        ]
        arrays = ScenarioArrays.build(vnfs, pool, capacities)
        live = list(pool)
        for rid in ("r2", "r0", "r4", "r3", "r1"):  # middle/first/last
            arrays.vnf_requests()
            arrays.vnf_chain_neighbors()
            idx = arrays.remove_request(rid)
            assert idx == [r.request_id for r in live].index(rid)
            live = [r for r in live if r.request_id != rid]
            assert_matches_rebuild(arrays, vnfs, live, capacities)
        assert len(arrays.request_ids) == 0
        assert len(arrays.chain_req) == 0

    def test_unknown_id_rejected(self, vnfs, capacities):
        arrays = ScenarioArrays.build(
            vnfs, [_request(0, ["fw"], 1.0)], capacities
        )
        with pytest.raises(ValidationError):
            arrays.remove_request("ghost")

    def test_unknown_flag_clears_when_last_unknown_leaves(
        self, vnfs, capacities
    ):
        arrays = ScenarioArrays.build(
            vnfs,
            [_request(0, ["fw"], 1.0), _request(1, ["ghost"], 1.0)],
            capacities,
        )
        assert arrays.chain_has_unknown
        arrays.remove_request("r1")
        assert not arrays.chain_has_unknown


class TestChurnSequence:
    def test_randomized_interleaving_matches_rebuild(self, vnfs, capacities):
        """Long random admit/depart interleaving, checked per step."""
        rng = np.random.default_rng(20170605)
        names = ["fw", "nat", "lb"]
        arrays = ScenarioArrays.build(vnfs, [], capacities)
        live = []
        next_id = 0
        for step in range(60):
            if live and rng.random() < 0.4:
                victim = live[int(rng.integers(len(live)))]
                arrays.remove_request(victim.request_id)
                live.remove(victim)
            else:
                size = int(rng.integers(1, 4))
                chain = [
                    str(n)
                    for n in rng.choice(names, size=size, replace=False)
                ]
                request = _request(
                    next_id, chain, float(rng.uniform(1.0, 100.0)),
                    float(rng.uniform(0.5, 1.0)),
                )
                next_id += 1
                arrays.append_request(request)
                live.append(request)
            if step % 5 == 0:
                assert_matches_rebuild(arrays, vnfs, live, capacities)
        assert_matches_rebuild(arrays, vnfs, live, capacities)

    def test_growth_does_not_alias_public_columns(self, vnfs, capacities):
        """A held reference to a column stays valid after regrowth."""
        arrays = ScenarioArrays.build(
            vnfs, [_request(0, ["fw"], 1.0)], capacities
        )
        before = arrays.lambda_r.copy()
        for i in range(1, 40):  # force several buffer doublings
            arrays.append_request(_request(i, ["nat"], float(i)))
        np.testing.assert_array_equal(arrays.lambda_r[:1], before)
        assert arrays.lambda_r[39] == 39.0
