"""Parity: vectorized topology Eq. (16) vs the scalar Router walk.

Mirrors ``tests/core/test_metric_parity.py`` for the topology-aware
evaluation path: :func:`total_latency_on_topology` (one gather from the
precomputed compute-pair latency matrix) must agree with
:func:`total_latency_on_topology_scalar` (per-request Router walk) to
1e-9 relative on solved scenarios across the default seed plus ten
derived seeds, and :func:`evaluate_deployment(topology=...)
<repro.core.evaluation.evaluate_deployment>` must report the same
total.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.evaluation import evaluate_deployment
from repro.core.joint import JointOptimizer
from repro.core.topology_eval import (
    total_latency_on_topology,
    total_latency_on_topology_scalar,
)
from repro.nfv.request import Request
from repro.scheduling.least_loaded import LeastLoadedScheduler
from repro.seeding import DEFAULT_SEED, derive_seed
from repro.topology.random_topology import random_datacenter
from repro.workload.generator import WorkloadGenerator

RTOL = 1e-9

SEEDS = [DEFAULT_SEED] + [
    derive_seed(DEFAULT_SEED, f"topology-parity-{i}") for i in range(10)
]

NUM_NODES = 20


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= RTOL * max(abs(a), abs(b), 1.0)


def _solved(seed: int, stable: bool = True):
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(
        num_vnfs=10,
        num_nodes=NUM_NODES,
        num_requests=60,
        instance_range=(4, 10),
        delivery_probability=0.95,
    )
    requests = w.requests
    if stable:
        load = {f.name: 0.0 for f in w.vnfs}
        for r in requests:
            for name in r.chain:
                load[name] += r.effective_rate
        worst = max(
            load[f.name] / (f.num_instances * f.service_rate)
            for f in w.vnfs
        )
        scale = min(1.0, 0.7 / worst)
        requests = [
            Request(
                r.request_id,
                r.chain,
                r.arrival_rate * scale,
                r.delivery_probability,
            )
            for r in requests
        ]
    solution = JointOptimizer(scheduler=LeastLoadedScheduler()).optimize(
        w.vnfs, requests, w.capacities
    )
    topo = random_datacenter(
        NUM_NODES,
        rng=np.random.default_rng(derive_seed(seed, "parity-fabric")),
        capacities=[w.capacities[f"node{i}"] for i in range(NUM_NODES)],
    )
    return solution.state, topo


@pytest.mark.parametrize("seed", SEEDS)
class TestTopologyEq16Parity:
    def test_total_latency_matches_router_walk(self, seed):
        state, topo = _solved(seed)
        vec = total_latency_on_topology(state, topo)
        ref = total_latency_on_topology_scalar(state, topo)
        assert math.isfinite(ref)
        assert _close(vec, ref)

    def test_evaluate_deployment_topology_agrees(self, seed):
        state, topo = _solved(seed)
        report = evaluate_deployment(
            state, with_admission=False, topology=topo
        )
        assert _close(
            report.total_latency,
            total_latency_on_topology_scalar(state, topo),
        )


class TestDegenerateAgreement:
    def test_unstable_state_is_inf_on_both_paths(self):
        state, topo = _solved(SEEDS[1], stable=False)
        vec = total_latency_on_topology(state, topo)
        ref = total_latency_on_topology_scalar(state, topo)
        # Either both finite or both +inf — the unstable draw depends on
        # the seed, agreement does not.
        assert _close(vec, ref)

    def test_flat_uniform_fabric_matches_flat_model(self):
        """On a fabric where every distinct pair costs exactly L, the
        topology path reproduces the flat-L evaluation."""
        from repro.core.evaluation import DEFAULT_LINK_LATENCY
        from repro.topology.graph import DatacenterTopology

        state, _ = _solved(SEEDS[0])
        # Star through one switch: every distinct compute pair costs
        # exactly 2 * L/2 = L, matching hops-between-nodes * L when each
        # inter-node transfer counts one flat hop.
        topo = DatacenterTopology(name="star")
        for i in range(NUM_NODES):
            topo.add_compute_node(f"node{i}", 1000.0)
        topo.add_switch("hub")
        for i in range(NUM_NODES):
            topo.add_link(
                f"node{i}", "hub", latency=DEFAULT_LINK_LATENCY / 2.0
            )
        flat = evaluate_deployment(state, with_admission=False)
        assert _close(
            total_latency_on_topology(state, topo), flat.total_latency
        )
