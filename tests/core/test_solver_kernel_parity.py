"""Golden parity: array-native solver kernels vs the legacy loops.

The PR-3 kernels (BFDSU residual-vector construction, flat-array RCKK,
delta-evaluated local search, broadcast swap refinement) must be
*byte-identical* to the pre-kernel implementations preserved under
``benchmarks/_reference_impl.py`` — same placements, same assignments,
same move sequences, same iteration counts — for the default seed and
ten derived seeds.
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _reference_impl import (  # noqa: E402
    ReferenceBFDSU,
    reference_kk_multiway,
    reference_refine_assignment,
    reference_refine_placement,
)
from bench_core import build_scenario  # noqa: E402
from repro.core.arrays import ScheduleArrays  # noqa: E402
from repro.core.local_search import (  # noqa: E402
    refine_placement,
    refine_placement_columns,
)
from repro.exceptions import ValidationError  # noqa: E402
from repro.scheduling.kernels import schedule_columns  # noqa: E402
from repro.scheduling.swap_refine import swap_refine_columns  # noqa: E402
from repro.partition.rckk import (  # noqa: E402
    forward_ckk_partition,
    rckk_partition,
)
from repro.placement.base import PlacementProblem  # noqa: E402
from repro.placement.bfdsu import BFDSUPlacement  # noqa: E402
from repro.scheduling.swap_refine import refine_assignment  # noqa: E402
from repro.seeding import DEFAULT_SEED, derive_seed  # noqa: E402
from repro.workload.generator import WorkloadGenerator  # noqa: E402

SEEDS = [DEFAULT_SEED] + [
    derive_seed(DEFAULT_SEED, f"solver-parity-{i}") for i in range(10)
]


@pytest.fixture(scope="module", params=SEEDS)
def seed(request):
    return request.param


@pytest.fixture(scope="module")
def workload(seed):
    gen = WorkloadGenerator(rng=np.random.default_rng(seed))
    return gen.workload(
        num_vnfs=8,
        num_nodes=15,
        num_requests=60,
        instance_range=(2, 6),
        tight_capacities=True,
    )


class TestBFDSUParity:
    def test_identical_placement_and_iterations(self, seed, workload):
        problem = PlacementProblem(
            vnfs=workload.vnfs, capacities=workload.capacities
        )
        kernel = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
            problem
        )
        legacy = ReferenceBFDSU(rng=np.random.default_rng(seed)).place(
            problem
        )
        assert kernel.placement == legacy.placement
        assert kernel.iterations == legacy.iterations


class TestRCKKParity:
    @pytest.mark.parametrize("num_ways", [1, 3, 7])
    def test_identical_subsets_and_iterations(
        self, seed, workload, num_ways
    ):
        rates = [r.effective_rate for r in workload.requests]
        kernel = rckk_partition(rates, num_ways)
        legacy = reference_kk_multiway(
            rates, num_ways, reverse_combine=True
        )
        assert kernel.subsets == legacy.subsets
        assert kernel.iterations == legacy.iterations

    def test_forward_ablation_identical(self, seed, workload):
        rates = [r.effective_rate for r in workload.requests]
        kernel = forward_ckk_partition(rates, 4)
        legacy = reference_kk_multiway(rates, 4, reverse_combine=False)
        assert kernel.subsets == legacy.subsets
        assert kernel.iterations == legacy.iterations


class TestLocalSearchParity:
    def test_identical_moves_report_and_placement(self, seed):
        solution, _, _ = build_scenario(60, 15, 8, seed=seed)
        state = solution.state
        baseline = dict(state.placement)

        kernel_trace = []
        kernel_report = refine_placement(state, trace=kernel_trace)
        kernel_final = dict(state.placement)

        state.placement.clear()
        state.placement.update(baseline)
        legacy_trace = []
        legacy_report = reference_refine_placement(
            state, trace=legacy_trace
        )
        legacy_final = dict(state.placement)

        assert kernel_trace == legacy_trace
        assert kernel_report == legacy_report
        assert kernel_final == legacy_final


class TestSwapRefineParity:
    def test_identical_assignment_and_moves(self, seed, workload):
        rates = [r.effective_rate for r in workload.requests]
        num_ways = max(f.num_instances for f in workload.vnfs)
        start = [i % num_ways for i in range(len(rates))]
        assert refine_assignment(
            rates, start, num_ways
        ) == reference_refine_assignment(rates, start, num_ways)


#: Float columns subject to the dtype policy (quantized for parity).
_FLOAT_COLS = (
    "D_f", "mu_f", "total_demand_f", "mu_inst", "A_v",
    "lambda_r", "P_r", "eff_rate",
)
#: Index columns subject to the dtype policy.
_INT_COLS = (
    "instance_offset", "inst_vnf", "chain_req", "chain_vnf", "chain_ptr",
)


def quantized_twins(arrays):
    """Default- and lean-policy views of the same column *values*.

    Float values are quantized through float32 first, so the lean twin
    (float32 storage) and the default twin (float64 storage) represent
    bit-for-bit identical numbers — the precondition for byte-identical
    refinement, since widening float32 to float64 is exact.
    """
    quantized = {
        c: getattr(arrays, c).astype(np.float32) for c in _FLOAT_COLS
    }
    default = dataclasses.replace(
        arrays,
        **{c: quantized[c].astype(np.float64) for c in _FLOAT_COLS},
    )
    lean = dataclasses.replace(
        arrays,
        **quantized,
        **{c: getattr(arrays, c).astype(np.int32) for c in _INT_COLS},
    )
    return default, lean


class TestLeanRefineParity:
    """LEAN int32/float32 columns refine byte-identically to DEFAULT."""

    def test_refine_placement_columns_lean_parity(self, seed):
        solution, _, _ = build_scenario(60, 15, 8, seed=seed)
        state = solution.state
        arrays = state.arrays()
        vec = arrays.placement_vector(state.placement)
        default, lean = quantized_twins(arrays)

        vec_d = vec.copy()
        vec_l = vec.astype(np.int32)
        trace_d, trace_l = [], []
        report_d = refine_placement_columns(default, vec_d, trace=trace_d)
        report_l = refine_placement_columns(lean, vec_l, trace=trace_l)

        assert trace_d == trace_l
        assert report_d == report_l
        np.testing.assert_array_equal(vec_d, vec_l.astype(np.int64))

    def test_swap_refine_columns_lean_parity(self, seed):
        solution, _, _ = build_scenario(60, 15, 8, seed=seed)
        arrays = solution.state.arrays()
        default, lean = quantized_twins(arrays)
        sched = schedule_columns(default)
        sched_lean = ScheduleArrays(
            req=sched.req.astype(np.int32),
            vnf=sched.vnf.astype(np.int32),
            k=sched.k.astype(np.int32),
            inst=sched.inst.astype(np.int32),
        )

        refined_d, moves_d = swap_refine_columns(default, sched)
        refined_l, moves_l = swap_refine_columns(lean, sched_lean)

        assert moves_d == moves_l
        np.testing.assert_array_equal(
            refined_d.k, refined_l.k.astype(np.int64)
        )
        np.testing.assert_array_equal(
            refined_d.inst, refined_l.inst.astype(np.int64)
        )
        assert refined_l.k.dtype == np.int32
        assert refined_l.inst.dtype == np.int32

    def test_swap_refine_overflow_guard(self, seed):
        # Refinement may pick ANY of a VNF's M_f slots, so a slot-index
        # dtype too narrow for max(M_f) must fail loudly up front
        # instead of wrapping int8 slot indices silently.
        solution, _, _ = build_scenario(30, 10, 5, seed=seed)
        arrays = solution.state.arrays()
        sched = schedule_columns(arrays)
        tiny = ScheduleArrays(
            req=sched.req,
            vnf=sched.vnf,
            k=sched.k.astype(np.int8),
            inst=sched.inst,
        )
        swap_refine_columns(arrays, tiny)  # max(M_f) fits int8: fine
        oversubscribed = dataclasses.replace(
            arrays, M_f=arrays.M_f + np.int64(200)
        )
        with pytest.raises(ValidationError):
            swap_refine_columns(oversubscribed, tiny)

    def test_refine_placement_overflow_guard(self, seed):
        solution, _, _ = build_scenario(30, 150, 5, seed=seed)
        arrays = solution.state.arrays()
        # A full placement on node 0 is representable in int8, but
        # relocation targets range over all 150 nodes — reject.
        vec8 = np.zeros(len(arrays.vnf_names), dtype=np.int8)
        with pytest.raises(ValidationError):
            refine_placement_columns(arrays, vec8)
