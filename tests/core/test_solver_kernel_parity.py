"""Golden parity: array-native solver kernels vs the legacy loops.

The PR-3 kernels (BFDSU residual-vector construction, flat-array RCKK,
delta-evaluated local search, broadcast swap refinement) must be
*byte-identical* to the pre-kernel implementations preserved under
``benchmarks/_reference_impl.py`` — same placements, same assignments,
same move sequences, same iteration counts — for the default seed and
ten derived seeds.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from _reference_impl import (  # noqa: E402
    ReferenceBFDSU,
    reference_kk_multiway,
    reference_refine_assignment,
    reference_refine_placement,
)
from bench_core import build_scenario  # noqa: E402
from repro.core.local_search import refine_placement  # noqa: E402
from repro.partition.rckk import (  # noqa: E402
    forward_ckk_partition,
    rckk_partition,
)
from repro.placement.base import PlacementProblem  # noqa: E402
from repro.placement.bfdsu import BFDSUPlacement  # noqa: E402
from repro.scheduling.swap_refine import refine_assignment  # noqa: E402
from repro.seeding import DEFAULT_SEED, derive_seed  # noqa: E402
from repro.workload.generator import WorkloadGenerator  # noqa: E402

SEEDS = [DEFAULT_SEED] + [
    derive_seed(DEFAULT_SEED, f"solver-parity-{i}") for i in range(10)
]


@pytest.fixture(scope="module", params=SEEDS)
def seed(request):
    return request.param


@pytest.fixture(scope="module")
def workload(seed):
    gen = WorkloadGenerator(rng=np.random.default_rng(seed))
    return gen.workload(
        num_vnfs=8,
        num_nodes=15,
        num_requests=60,
        instance_range=(2, 6),
        tight_capacities=True,
    )


class TestBFDSUParity:
    def test_identical_placement_and_iterations(self, seed, workload):
        problem = PlacementProblem(
            vnfs=workload.vnfs, capacities=workload.capacities
        )
        kernel = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
            problem
        )
        legacy = ReferenceBFDSU(rng=np.random.default_rng(seed)).place(
            problem
        )
        assert kernel.placement == legacy.placement
        assert kernel.iterations == legacy.iterations


class TestRCKKParity:
    @pytest.mark.parametrize("num_ways", [1, 3, 7])
    def test_identical_subsets_and_iterations(
        self, seed, workload, num_ways
    ):
        rates = [r.effective_rate for r in workload.requests]
        kernel = rckk_partition(rates, num_ways)
        legacy = reference_kk_multiway(
            rates, num_ways, reverse_combine=True
        )
        assert kernel.subsets == legacy.subsets
        assert kernel.iterations == legacy.iterations

    def test_forward_ablation_identical(self, seed, workload):
        rates = [r.effective_rate for r in workload.requests]
        kernel = forward_ckk_partition(rates, 4)
        legacy = reference_kk_multiway(rates, 4, reverse_combine=False)
        assert kernel.subsets == legacy.subsets
        assert kernel.iterations == legacy.iterations


class TestLocalSearchParity:
    def test_identical_moves_report_and_placement(self, seed):
        solution, _, _ = build_scenario(60, 15, 8, seed=seed)
        state = solution.state
        baseline = dict(state.placement)

        kernel_trace = []
        kernel_report = refine_placement(state, trace=kernel_trace)
        kernel_final = dict(state.placement)

        state.placement.clear()
        state.placement.update(baseline)
        legacy_trace = []
        legacy_report = reference_refine_placement(
            state, trace=legacy_trace
        )
        legacy_final = dict(state.placement)

        assert kernel_trace == legacy_trace
        assert kernel_report == legacy_report
        assert kernel_final == legacy_final


class TestSwapRefineParity:
    def test_identical_assignment_and_moves(self, seed, workload):
        rates = [r.effective_rate for r in workload.requests]
        num_ways = max(f.num_instances for f in workload.vnfs)
        start = [i % num_ways for i in range(len(rates))]
        assert refine_assignment(
            rates, start, num_ways
        ) == reference_refine_assignment(rates, start, num_ways)
