"""Unit tests for admission control."""

import numpy as np
import pytest

from repro.core.admission import apply_admission_control, power_of_two_admit
from repro.core.incremental import DeploymentEngine
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

CHAIN = ServiceChain(["fw"])


def _instance(rates, mu=100.0, p=1.0):
    vnf = VNF("fw", 1.0, 1, mu)
    inst = ServiceInstance(vnf=vnf, index=0)
    for i, rate in enumerate(rates):
        inst.assign(
            Request(f"r{i}", CHAIN, rate, delivery_probability=p)
        )
    return inst


class TestStableInstances:
    def test_nothing_rejected(self):
        outcome = apply_admission_control([_instance([30.0, 40.0])])
        assert outcome.num_rejected == 0
        assert outcome.num_admitted == 2
        assert outcome.rejection_rate == 0.0

    def test_instances_not_mutated(self):
        inst = _instance([200.0, 10.0])
        apply_admission_control([inst])
        assert len(inst.requests) == 2  # original untouched


class TestOverloadedInstances:
    def test_sheds_heaviest_first(self):
        outcome = apply_admission_control([_instance([80.0, 30.0])])
        assert outcome.num_rejected == 1
        assert outcome.rejected[0].arrival_rate == pytest.approx(80.0)
        assert outcome.instances[0].is_stable

    def test_sheds_minimum_needed(self):
        # 60 + 30 + 20 = 110 > 99.9; dropping only the 60 suffices.
        outcome = apply_admission_control([_instance([60.0, 30.0, 20.0])])
        assert outcome.num_rejected == 1
        assert outcome.num_admitted == 2

    def test_rejection_rate(self):
        outcome = apply_admission_control([_instance([80.0, 80.0])])
        assert outcome.rejection_rate == pytest.approx(0.5)

    def test_all_rejected_when_every_request_oversized(self):
        outcome = apply_admission_control([_instance([150.0, 120.0])])
        assert outcome.num_rejected == 2
        assert outcome.num_admitted == 0

    def test_post_shedding_utilization_under_target(self):
        outcome = apply_admission_control(
            [_instance([70.0, 60.0, 50.0])], target_utilization=0.9
        )
        for inst in outcome.instances:
            assert inst.utilization <= 0.9 + 1e-9

    def test_effective_rates_drive_shedding(self):
        # 55 raw at P=0.5 is 110 effective: must shed.
        outcome = apply_admission_control([_instance([55.0], p=0.5)])
        assert outcome.num_rejected == 1


class TestMultipleInstances:
    def test_independent_shedding(self):
        stable = _instance([10.0])
        overloaded = _instance([90.0, 50.0])
        outcome = apply_admission_control([stable, overloaded])
        assert outcome.num_rejected == 1
        assert len(outcome.instances) == 2

    def test_empty_input(self):
        outcome = apply_admission_control([])
        assert outcome.num_rejected == 0
        assert outcome.rejection_rate == 0.0


class TestValidation:
    def test_bad_target(self):
        with pytest.raises(ValidationError):
            apply_admission_control([], target_utilization=1.0)
        with pytest.raises(ValidationError):
            apply_admission_control([], target_utilization=0.0)


class _PickRng:
    """Deterministic probe stand-in: returns queued index pairs."""

    def __init__(self, *pairs):
        self._pairs = list(pairs)

    def integers(self, low, high, size):
        return np.asarray(self._pairs.pop(0))


class TestPowerOfTwoAdmit:
    def test_lower_load_wins(self):
        loads = np.array([5.0, 1.0, 3.0])
        assert power_of_two_admit(loads, 1.0, _PickRng((0, 1))) == 1
        assert power_of_two_admit(loads, 1.0, _PickRng((2, 0))) == 2

    def test_tie_resolves_to_lower_index(self):
        loads = np.array([2.0, 2.0])
        assert power_of_two_admit(loads, 1.0, _PickRng((1, 0))) == 0

    def test_same_probe_twice_is_fine(self):
        loads = np.array([4.0, 9.0])
        assert power_of_two_admit(loads, 1.0, _PickRng((1, 1))) == 1

    def test_capacity_gate(self):
        loads = np.array([10.0, 20.0])
        picks = _PickRng((0, 1))
        assert power_of_two_admit(loads, 5.0, picks, capacity=14.0) == -1
        # Exactly at capacity passes (the fit_eps slack).
        picks = _PickRng((0, 1))
        assert power_of_two_admit(loads, 5.0, picks, capacity=15.0) == 0

    def test_masked_winner_rejected(self):
        loads = np.array([np.inf, np.inf])
        assert power_of_two_admit(loads, 1.0, _PickRng((0, 1))) == -1

    def test_empty_loads_rejected_without_probes(self):
        assert power_of_two_admit(np.zeros(0), 1.0, _PickRng()) == -1

    def test_two_probes_consumed_even_on_rejection(self):
        """The stream position is a pure function of the admit count."""
        loads = np.array([10.0, 10.0])
        rng = np.random.default_rng(5)
        assert (
            power_of_two_admit(loads, 5.0, rng, capacity=1.0) == -1
        )
        after_reject = power_of_two_admit(loads, 5.0, rng)
        replay = np.random.default_rng(5)
        replay.integers(0, 2, size=2)  # the rejected call's probes
        expected = power_of_two_admit(loads, 5.0, replay)
        assert after_reject == expected


class TestEnginePowerOfTwo:
    def _vnfs(self):
        return [VNF("fw", 1.0, 4, 100.0), VNF("lb", 1.0, 4, 100.0)]

    def _caps(self):
        return {"n0": 40.0, "n1": 40.0}

    def test_policy_is_selectable_and_deterministic(self):
        outcomes = []
        for _ in range(2):
            engine = DeploymentEngine(
                self._vnfs(),
                self._caps(),
                admission="power-of-two",
                admission_rng=np.random.default_rng(42),
            )
            assert engine.admission == "power-of-two"
            outcomes.append(
                tuple(
                    tuple(
                        sorted(
                            engine.admit(
                                Request(f"r{i}", CHAIN, 5.0)
                            ).assignment.items()
                        )
                    )
                    for i in range(12)
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_default_policy_unchanged(self):
        engine = DeploymentEngine(self._vnfs(), self._caps())
        assert engine.admission == "least-loaded"

    def test_unknown_policy_raises(self):
        with pytest.raises(SchedulingError, match="unknown admission"):
            DeploymentEngine(
                self._vnfs(), self._caps(), admission="random"
            )
