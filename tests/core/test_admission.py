"""Unit tests for admission control."""

import pytest

from repro.core.admission import apply_admission_control
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

CHAIN = ServiceChain(["fw"])


def _instance(rates, mu=100.0, p=1.0):
    vnf = VNF("fw", 1.0, 1, mu)
    inst = ServiceInstance(vnf=vnf, index=0)
    for i, rate in enumerate(rates):
        inst.assign(
            Request(f"r{i}", CHAIN, rate, delivery_probability=p)
        )
    return inst


class TestStableInstances:
    def test_nothing_rejected(self):
        outcome = apply_admission_control([_instance([30.0, 40.0])])
        assert outcome.num_rejected == 0
        assert outcome.num_admitted == 2
        assert outcome.rejection_rate == 0.0

    def test_instances_not_mutated(self):
        inst = _instance([200.0, 10.0])
        apply_admission_control([inst])
        assert len(inst.requests) == 2  # original untouched


class TestOverloadedInstances:
    def test_sheds_heaviest_first(self):
        outcome = apply_admission_control([_instance([80.0, 30.0])])
        assert outcome.num_rejected == 1
        assert outcome.rejected[0].arrival_rate == pytest.approx(80.0)
        assert outcome.instances[0].is_stable

    def test_sheds_minimum_needed(self):
        # 60 + 30 + 20 = 110 > 99.9; dropping only the 60 suffices.
        outcome = apply_admission_control([_instance([60.0, 30.0, 20.0])])
        assert outcome.num_rejected == 1
        assert outcome.num_admitted == 2

    def test_rejection_rate(self):
        outcome = apply_admission_control([_instance([80.0, 80.0])])
        assert outcome.rejection_rate == pytest.approx(0.5)

    def test_all_rejected_when_every_request_oversized(self):
        outcome = apply_admission_control([_instance([150.0, 120.0])])
        assert outcome.num_rejected == 2
        assert outcome.num_admitted == 0

    def test_post_shedding_utilization_under_target(self):
        outcome = apply_admission_control(
            [_instance([70.0, 60.0, 50.0])], target_utilization=0.9
        )
        for inst in outcome.instances:
            assert inst.utilization <= 0.9 + 1e-9

    def test_effective_rates_drive_shedding(self):
        # 55 raw at P=0.5 is 110 effective: must shed.
        outcome = apply_admission_control([_instance([55.0], p=0.5)])
        assert outcome.num_rejected == 1


class TestMultipleInstances:
    def test_independent_shedding(self):
        stable = _instance([10.0])
        overloaded = _instance([90.0, 50.0])
        outcome = apply_admission_control([stable, overloaded])
        assert outcome.num_rejected == 1
        assert len(outcome.instances) == 2

    def test_empty_input(self):
        outcome = apply_admission_control([])
        assert outcome.num_rejected == 0
        assert outcome.rejection_rate == 0.0


class TestValidation:
    def test_bad_target(self):
        with pytest.raises(ValidationError):
            apply_admission_control([], target_utilization=1.0)
        with pytest.raises(ValidationError):
            apply_admission_control([], target_utilization=0.0)
