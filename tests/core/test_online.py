"""Unit tests for the online scheduler with periodic rebalancing."""

import numpy as np
import pytest

from repro.core.online import OnlineScheduler
from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF

CHAIN = ServiceChain(["fw"])
VNF_UNDER_TEST = VNF("fw", 1.0, 3, 1e6)


def _request(rid, rate):
    return Request(rid, CHAIN, rate)


class TestArrivals:
    def test_joins_least_loaded(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        assert sched.arrive(_request("a", 10.0)) == 0
        assert sched.arrive(_request("b", 5.0)) == 1
        assert sched.arrive(_request("c", 1.0)) == 2
        # Next joins the lightest (instance 2 at 1.0).
        assert sched.arrive(_request("d", 1.0)) == 2

    def test_wrong_vnf_rejected(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        other = Request("x", ServiceChain(["nat"]), 1.0)
        with pytest.raises(SchedulingError):
            sched.arrive(other)

    def test_duplicate_rejected(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        sched.arrive(_request("a", 1.0))
        with pytest.raises(SchedulingError):
            sched.arrive(_request("a", 2.0))

    def test_loads_tracked(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        sched.arrive(_request("a", 10.0))
        sched.arrive(_request("b", 20.0))
        assert sorted(sched.instance_rates()) == [0.0, 10.0, 20.0]


class TestDepartures:
    def test_departure_releases_load(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        sched.arrive(_request("a", 10.0))
        sched.depart("a")
        assert sched.active_requests == 0
        assert sched.instance_rates() == [0.0, 0.0, 0.0]

    def test_unknown_departure(self):
        with pytest.raises(SchedulingError):
            OnlineScheduler(VNF_UNDER_TEST).depart("ghost")


class TestRebalancing:
    def test_manual_rebalance_improves_spread(self):
        rng = np.random.default_rng(0)
        sched = OnlineScheduler(VNF_UNDER_TEST)
        # Adversarial arrival order: heavy ones early get spread, then a
        # departure wave unbalances.
        for i, rate in enumerate(rng.uniform(1.0, 100.0, size=30)):
            sched.arrive(_request(f"r{i}", float(rate)))
        for i in range(0, 30, 3):
            sched.depart(f"r{i}")
        before = sched.spread()
        migrations = sched.rebalance()
        after = sched.spread()
        assert after <= before + 1e-9
        assert migrations >= 0

    def test_periodic_rebalance_triggers(self):
        sched = OnlineScheduler(VNF_UNDER_TEST, rebalance_every=5)
        for i in range(10):
            sched.arrive(_request(f"r{i}", 10.0 * (i + 1)))
        # Two rebalances happened; spread should be near-optimal.
        online_only = OnlineScheduler(VNF_UNDER_TEST)
        for i in range(10):
            online_only.arrive(_request(f"r{i}", 10.0 * (i + 1)))
        assert sched.spread() <= online_only.spread() + 1e-9

    def test_rebalance_empty_is_noop(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        assert sched.rebalance() == 0

    def test_migrations_counted(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        for i, rate in enumerate([100.0, 1.0, 1.0, 1.0, 99.0, 98.0]):
            sched.arrive(_request(f"r{i}", rate))
        sched.rebalance()
        assert sched.total_migrations == sched.history[-1].migrations

    def test_bad_interval(self):
        with pytest.raises(ValidationError):
            OnlineScheduler(VNF_UNDER_TEST, rebalance_every=-1)


class TestHistory:
    def test_snapshots_recorded(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        sched.arrive(_request("a", 5.0))
        sched.arrive(_request("b", 7.0))
        sched.depart("a")
        assert len(sched.history) == 3
        assert sched.history[-1].active_requests == 1
        assert sched.history[0].spread == pytest.approx(5.0)

    def test_assignment_lookup(self):
        sched = OnlineScheduler(VNF_UNDER_TEST)
        k = sched.arrive(_request("a", 5.0))
        assert sched.assignment_of("a") == k
        with pytest.raises(SchedulingError):
            sched.assignment_of("ghost")
