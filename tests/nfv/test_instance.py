"""Unit tests for service instances."""

import pytest

from repro.exceptions import SchedulingError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.instance import ServiceInstance
from repro.nfv.request import Request
from repro.nfv.vnf import VNF


@pytest.fixture
def vnf():
    return VNF("fw", demand_per_instance=10.0, num_instances=2,
               service_rate=100.0)


@pytest.fixture
def chain():
    return ServiceChain(["fw"])


def _request(chain, rid, rate, p=1.0):
    return Request(rid, chain, arrival_rate=rate, delivery_probability=p)


class TestConstruction:
    def test_valid_indices(self, vnf):
        ServiceInstance(vnf=vnf, index=0)
        ServiceInstance(vnf=vnf, index=1)

    def test_out_of_range_index(self, vnf):
        with pytest.raises(ValidationError):
            ServiceInstance(vnf=vnf, index=2)
        with pytest.raises(ValidationError):
            ServiceInstance(vnf=vnf, index=-1)

    def test_key(self, vnf):
        assert ServiceInstance(vnf, 1).key == ("fw", 1)


class TestAssignment:
    def test_assign(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 5.0))
        assert len(inst.requests) == 1

    def test_wrong_vnf_rejected(self, vnf):
        inst = ServiceInstance(vnf, 0)
        other = _request(ServiceChain(["nat"]), "r0", 5.0)
        with pytest.raises(SchedulingError):
            inst.assign(other)

    def test_duplicate_rejected(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 5.0))
        with pytest.raises(SchedulingError):
            inst.assign(_request(chain, "r0", 7.0))


class TestQueueing:
    def test_rates(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 9.8, p=0.98))
        inst.assign(_request(chain, "r1", 20.0))
        assert inst.external_arrival_rate == pytest.approx(29.8)
        assert inst.equivalent_arrival_rate == pytest.approx(30.0)

    def test_utilization_eq9(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 50.0))
        assert inst.utilization == pytest.approx(0.5)
        assert inst.is_stable

    def test_unstable(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 60.0))
        inst.assign(_request(chain, "r1", 60.0))
        assert not inst.is_stable

    def test_mean_number_eq10(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 50.0))
        # rho = 0.5 -> N = 1.
        assert inst.mean_number_in_system == pytest.approx(1.0)

    def test_response_time_eq12_uniform_p(self, vnf, chain):
        # W = 1 / (P mu - sum lambda_raw) when all P_r equal.
        p = 0.98
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 30.0, p=p))
        inst.assign(_request(chain, "r1", 20.0, p=p))
        expected = 1.0 / (p * vnf.service_rate - 50.0)
        assert inst.mean_response_time == pytest.approx(expected)

    def test_response_time_undefined_when_idle(self, vnf):
        inst = ServiceInstance(vnf, 0)
        with pytest.raises(SchedulingError):
            _ = inst.mean_response_time

    def test_queue_object(self, vnf, chain):
        inst = ServiceInstance(vnf, 0)
        inst.assign(_request(chain, "r0", 50.0))
        q = inst.queue()
        assert q.arrival_rate == pytest.approx(50.0)
        assert q.service_rate == pytest.approx(100.0)
