"""Unit tests for the VNF model object."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.vnf import VNF, VNFCategory


class TestConstruction:
    def test_valid(self):
        f = VNF("fw", demand_per_instance=10.0, num_instances=3,
                service_rate=100.0)
        assert f.category is VNFCategory.OTHER

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            VNF("", 1.0, 1, 1.0)

    def test_zero_demand_rejected(self):
        with pytest.raises(ValidationError):
            VNF("f", 0.0, 1, 1.0)

    def test_zero_instances_rejected(self):
        with pytest.raises(ValidationError):
            VNF("f", 1.0, 0, 1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValidationError):
            VNF("f", 1.0, 1, 0.0)


class TestDerived:
    def test_total_demand(self):
        f = VNF("f", demand_per_instance=10.0, num_instances=4,
                service_rate=50.0)
        assert f.total_demand == pytest.approx(40.0)

    def test_total_service_rate(self):
        f = VNF("f", 10.0, 4, 50.0)
        assert f.total_service_rate == pytest.approx(200.0)


class TestReplicas:
    def test_replica_name(self):
        f = VNF("fw", 10.0, 2, 100.0)
        assert f.replica(1).name == "fw#1"
        assert f.replica(3).name == "fw#3"

    def test_replica_preserves_parameters(self):
        f = VNF("fw", 10.0, 2, 100.0, category=VNFCategory.SECURITY)
        r = f.replica(1)
        assert r.demand_per_instance == f.demand_per_instance
        assert r.num_instances == f.num_instances
        assert r.category is f.category

    def test_replica_index_validated(self):
        with pytest.raises(ValidationError):
            VNF("fw", 1.0, 1, 1.0).replica(0)


class TestCopies:
    def test_with_instances(self):
        f = VNF("fw", 10.0, 2, 100.0)
        assert f.with_instances(7).num_instances == 7
        assert f.num_instances == 2  # original untouched

    def test_with_service_rate(self):
        f = VNF("fw", 10.0, 2, 100.0)
        assert f.with_service_rate(9.0).service_rate == 9.0

    def test_frozen(self):
        f = VNF("fw", 10.0, 2, 100.0)
        with pytest.raises(Exception):
            f.name = "other"
