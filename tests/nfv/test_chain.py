"""Unit tests for service chains."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import MAX_CHAIN_LENGTH, ServiceChain


class TestConstruction:
    def test_valid(self):
        c = ServiceChain(["a", "b", "c"])
        assert len(c) == 3
        assert list(c) == ["a", "b", "c"]

    def test_single_vnf(self):
        assert len(ServiceChain(["only"])) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ServiceChain([])

    def test_revisit_rejected(self):
        with pytest.raises(ValidationError):
            ServiceChain(["a", "b", "a"])

    def test_hashable_and_equal(self):
        assert ServiceChain(["a", "b"]) == ServiceChain(["a", "b"])
        assert hash(ServiceChain(["a"])) == hash(ServiceChain(["a"]))


class TestQueries:
    def test_uses(self):
        c = ServiceChain(["fw", "nat"])
        assert c.uses("fw")
        assert not c.uses("ids")
        assert "nat" in c

    def test_position(self):
        c = ServiceChain(["fw", "nat", "lb"])
        assert c.position_of("fw") == 0
        assert c.position_of("lb") == 2

    def test_position_of_missing_raises(self):
        with pytest.raises(ValidationError):
            ServiceChain(["fw"]).position_of("nat")

    def test_successors(self):
        c = ServiceChain(["a", "b", "c"])
        assert c.successors("a") == ("b", "c")
        assert c.successors("c") == ()

    def test_hops(self):
        c = ServiceChain(["a", "b", "c"])
        assert c.hops() == (("a", "b"), ("b", "c"))
        assert ServiceChain(["solo"]).hops() == ()


class TestLengthValidation:
    def test_within_limit(self):
        ServiceChain(list("abcdef")).validate_length()

    def test_over_limit(self):
        with pytest.raises(ValidationError):
            ServiceChain(list("abcdefg")).validate_length()

    def test_custom_limit(self):
        with pytest.raises(ValidationError):
            ServiceChain(["a", "b"]).validate_length(max_length=1)

    def test_default_is_paper_limit(self):
        assert MAX_CHAIN_LENGTH == 6
