"""Unit tests for requests."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request


@pytest.fixture
def chain():
    return ServiceChain(["fw", "nat"])


class TestConstruction:
    def test_valid(self, chain):
        r = Request("r0", chain, arrival_rate=5.0)
        assert r.delivery_probability == 1.0

    def test_empty_id_rejected(self, chain):
        with pytest.raises(ValidationError):
            Request("", chain, 5.0)

    def test_zero_rate_rejected(self, chain):
        with pytest.raises(ValidationError):
            Request("r0", chain, 0.0)

    def test_bad_probability_rejected(self, chain):
        with pytest.raises(ValidationError):
            Request("r0", chain, 5.0, delivery_probability=0.0)
        with pytest.raises(ValidationError):
            Request("r0", chain, 5.0, delivery_probability=1.2)


class TestDerived:
    def test_effective_rate_no_loss(self, chain):
        assert Request("r", chain, 10.0).effective_rate == pytest.approx(10.0)

    def test_effective_rate_with_loss(self, chain):
        r = Request("r", chain, 9.8, delivery_probability=0.98)
        assert r.effective_rate == pytest.approx(10.0)

    def test_uses(self, chain):
        r = Request("r", chain, 1.0)
        assert r.uses("fw")
        assert not r.uses("ids")

    def test_chain_length(self, chain):
        assert Request("r", chain, 1.0).chain_length == 2
