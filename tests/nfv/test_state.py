"""Unit tests for the joint deployment state (Eqs. 1-7 validation)."""

import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.state import DeploymentState
from repro.nfv.vnf import VNF


@pytest.fixture
def vnfs():
    return [
        VNF("fw", 10.0, 2, 100.0),
        VNF("nat", 5.0, 2, 200.0),
    ]


@pytest.fixture
def requests():
    chain = ServiceChain(["fw", "nat"])
    return [
        Request("r0", chain, 10.0),
        Request("r1", chain, 20.0),
    ]


@pytest.fixture
def capacities():
    return {"n0": 30.0, "n1": 20.0}


@pytest.fixture
def state(vnfs, requests, capacities):
    return DeploymentState(
        vnfs=vnfs,
        requests=requests,
        node_capacities=capacities,
        placement={"fw": "n0", "nat": "n0"},
        schedule={
            ("r0", "fw"): 0,
            ("r0", "nat"): 0,
            ("r1", "fw"): 1,
            ("r1", "nat"): 0,
        },
    )


class TestVariables:
    def test_x(self, state):
        assert state.x("fw", "n0") == 1
        assert state.x("fw", "n1") == 0

    def test_y_eq1(self, state):
        assert state.y("n0") == 1
        assert state.y("n1") == 0

    def test_z(self, state):
        assert state.z("r0", "fw", 0) == 1
        assert state.z("r0", "fw", 1) == 0

    def test_eta_eq4(self, state):
        assert state.eta("r0", "n0") == 1
        assert state.eta("r0", "n1") == 0

    def test_eta_unknown_request(self, state):
        with pytest.raises(ValidationError):
            state.eta("ghost", "n0")


class TestDerivedState:
    def test_nodes_in_service(self, state):
        assert state.nodes_in_service() == ["n0"]

    def test_node_load_eq6_lhs(self, state):
        # fw: 2 * 10 + nat: 2 * 5 = 30.
        assert state.node_load("n0") == pytest.approx(30.0)

    def test_node_utilization(self, state):
        assert state.node_utilization("n0") == pytest.approx(1.0)
        assert state.node_utilization("n1") == 0.0

    def test_unknown_node(self, state):
        with pytest.raises(ValidationError):
            state.node_utilization("ghost")

    def test_average_utilization_eq13(self, state):
        assert state.average_node_utilization() == pytest.approx(1.0)

    def test_nodes_traversed_collapses_duplicates(self, state):
        assert state.nodes_traversed("r0") == ["n0"]
        assert state.inter_node_hops("r0") == 0

    def test_inter_node_hops_across_nodes(self, vnfs, requests, capacities):
        s = DeploymentState(
            vnfs=vnfs,
            requests=requests,
            node_capacities=capacities,
            placement={"fw": "n0", "nat": "n1"},
            schedule={
                ("r0", "fw"): 0, ("r0", "nat"): 0,
                ("r1", "fw"): 0, ("r1", "nat"): 0,
            },
        )
        assert s.nodes_traversed("r0") == ["n0", "n1"]
        assert s.inter_node_hops("r0") == 1


class TestInstances:
    def test_materialization(self, state):
        instances = state.instances()
        assert len(instances) == 4  # 2 VNFs x 2 instances
        fw0 = next(i for i in instances if i.key == ("fw", 0))
        assert [r.request_id for r in fw0.requests] == ["r0"]

    def test_shared_instance_merges_rates_eq7(self, state):
        nat0 = next(
            i for i in state.instances() if i.key == ("nat", 0)
        )
        assert nat0.equivalent_arrival_rate == pytest.approx(30.0)

    def test_instances_of(self, state):
        assert len(state.instances_of("fw")) == 2


class TestValidation:
    def test_valid_state_passes(self, state):
        state.validate()

    def test_unplaced_vnf_eq2(self, vnfs, requests, capacities):
        s = DeploymentState(
            vnfs=vnfs, requests=requests, node_capacities=capacities,
            placement={"fw": "n0"}, schedule={},
        )
        with pytest.raises(ValidationError, match="Eq. 2"):
            s.validate_placement()

    def test_capacity_violation_eq6(self, vnfs, requests):
        s = DeploymentState(
            vnfs=vnfs, requests=requests,
            node_capacities={"n0": 10.0},
            placement={"fw": "n0", "nat": "n0"}, schedule={},
        )
        with pytest.raises(ValidationError, match="Eq. 6"):
            s.validate_placement()

    def test_missing_schedule_eq5(self, vnfs, requests, capacities, state):
        del state.schedule[("r0", "fw")]
        with pytest.raises(ValidationError, match="Eq. 5"):
            state.validate_schedule()

    def test_out_of_range_instance(self, state):
        state.schedule[("r0", "fw")] = 7
        with pytest.raises(ValidationError):
            state.validate_schedule()

    def test_schedule_on_unused_vnf(self, vnfs, capacities):
        chain = ServiceChain(["fw"])
        requests = [Request("r0", chain, 1.0)]
        s = DeploymentState(
            vnfs=vnfs, requests=requests, node_capacities=capacities,
            placement={"fw": "n0", "nat": "n1"},
            schedule={("r0", "fw"): 0, ("r0", "nat"): 0},
        )
        with pytest.raises(ValidationError, match="Eq. 5"):
            s.validate_schedule()

    def test_duplicate_vnf_names_rejected(self, requests, capacities):
        vnfs = [VNF("fw", 1.0, 1, 1.0), VNF("fw", 2.0, 1, 1.0)]
        with pytest.raises(ValidationError):
            DeploymentState(
                vnfs=vnfs, requests=requests, node_capacities=capacities
            )

    def test_duplicate_request_ids_rejected(self, vnfs, capacities):
        chain = ServiceChain(["fw"])
        requests = [Request("r0", chain, 1.0), Request("r0", chain, 2.0)]
        with pytest.raises(ValidationError):
            DeploymentState(
                vnfs=vnfs, requests=requests, node_capacities=capacities
            )
