"""Unit tests for loss-feedback effective arrival rates."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing import feedback


class TestEffectiveRate:
    def test_no_loss_identity(self):
        assert feedback.effective_arrival_rate(10.0, 1.0) == pytest.approx(10.0)

    def test_two_percent_loss(self):
        # lambda / P with P = 0.98.
        assert feedback.effective_arrival_rate(9.8, 0.98) == pytest.approx(10.0)

    def test_rate_grows_as_p_drops(self):
        rates = [
            feedback.effective_arrival_rate(10.0, p) for p in (1.0, 0.9, 0.5)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_zero_rate(self):
        assert feedback.effective_arrival_rate(0.0, 0.5) == 0.0

    def test_invalid_probability(self):
        for p in (0.0, -0.5, 1.5):
            with pytest.raises(ValidationError):
                feedback.effective_arrival_rate(1.0, p)

    def test_negative_rate(self):
        with pytest.raises(ValidationError):
            feedback.effective_arrival_rate(-1.0, 0.9)


class TestRetransmissionRate:
    def test_no_loss_no_retransmissions(self):
        assert feedback.retransmission_rate(10.0, 1.0) == pytest.approx(0.0)

    def test_matches_geometric_overhead(self):
        # Retransmission rate = lambda (1 - P) / P.
        assert feedback.retransmission_rate(10.0, 0.8) == pytest.approx(2.5)


class TestMergedRate:
    def test_single_flow(self):
        assert feedback.merged_effective_rate([(10.0, 0.5)]) == pytest.approx(20.0)

    def test_multiple_flows(self):
        flows = [(10.0, 1.0), (9.0, 0.9), (8.0, 0.8)]
        assert feedback.merged_effective_rate(flows) == pytest.approx(
            10.0 + 10.0 + 10.0
        )

    def test_empty_is_zero(self):
        assert feedback.merged_effective_rate([]) == 0.0

    def test_propagates_validation(self):
        with pytest.raises(ValidationError):
            feedback.merged_effective_rate([(1.0, 0.0)])


class TestExpectedTransmissions:
    def test_geometric_mean(self):
        assert feedback.expected_transmissions(0.5) == pytest.approx(2.0)
        assert feedback.expected_transmissions(1.0) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValidationError):
            feedback.expected_transmissions(0.0)


class TestAggregateExternal:
    def test_sums(self):
        assert feedback.aggregate_external_rate([1.0, 2.0, 3.5]) == pytest.approx(6.5)

    def test_empty(self):
        assert feedback.aggregate_external_rate([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            feedback.aggregate_external_rate([1.0, -2.0])


class TestEffectiveRatesVectorized:
    def test_matches_scalar_helper_elementwise(self):
        rates = [10.0, 9.0, 0.0, 8.0]
        probs = [1.0, 0.9, 0.5, 0.8]
        out = feedback.effective_arrival_rates(rates, probs)
        assert out.shape == (4,)
        for got, rate, p in zip(out, rates, probs):
            assert got == pytest.approx(
                feedback.effective_arrival_rate(rate, p)
            )

    def test_empty_columns(self):
        assert feedback.effective_arrival_rates([], []).size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            feedback.effective_arrival_rates([1.0, 2.0], [0.9])

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValidationError):
            feedback.effective_arrival_rates([-1.0], [0.9])
        with pytest.raises(ValidationError):
            feedback.effective_arrival_rates([1.0], [0.0])
        with pytest.raises(ValidationError):
            feedback.effective_arrival_rates([1.0], [1.5])

    def test_returns_numpy_array(self):
        out = feedback.effective_arrival_rates([5.0], [0.5])
        assert isinstance(out, np.ndarray)
        assert out[0] == pytest.approx(10.0)


class TestValidateDeliveryProbability:
    def test_boundaries(self):
        feedback.validate_delivery_probability(1.0)
        feedback.validate_delivery_probability(1e-9)
        with pytest.raises(ValidationError):
            feedback.validate_delivery_probability(0.0)
        with pytest.raises(ValidationError):
            feedback.validate_delivery_probability(1.0000001)
