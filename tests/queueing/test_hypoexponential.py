"""Unit tests for hypoexponential chain-latency analytics."""


import numpy as np
import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.hypoexponential import HypoexponentialLatency
from repro.queueing.mm1 import MM1Queue


class TestConstruction:
    def test_valid(self):
        HypoexponentialLatency([10.0, 20.0], [30.0, 50.0])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            HypoexponentialLatency([10.0], [30.0, 50.0])

    def test_empty(self):
        with pytest.raises(ValidationError):
            HypoexponentialLatency([], [])

    def test_unstable_station(self):
        with pytest.raises(UnstableQueueError):
            HypoexponentialLatency([30.0], [30.0])


class TestSingleStage:
    """One station reduces to the exponential M/M/1 sojourn."""

    def test_mean(self):
        hypo = HypoexponentialLatency([40.0], [100.0])
        assert hypo.mean == pytest.approx(
            MM1Queue(40.0, 100.0).mean_response_time
        )

    def test_percentiles_match_mm1(self):
        hypo = HypoexponentialLatency([40.0], [100.0])
        mm1 = MM1Queue(40.0, 100.0)
        for q in (0.5, 0.9, 0.99):
            assert hypo.percentile(q) == pytest.approx(
                mm1.response_time_percentile(q), rel=1e-6
            )

    def test_cdf_limits(self):
        hypo = HypoexponentialLatency([40.0], [100.0])
        assert hypo.cdf(0.0) == 0.0
        assert hypo.cdf(1e6) == pytest.approx(1.0)


class TestTwoStage:
    def test_mean_is_sum(self):
        hypo = HypoexponentialLatency([30.0, 30.0], [90.0, 70.0])
        assert hypo.mean == pytest.approx(1.0 / 60.0 + 1.0 / 40.0)

    def test_variance_is_sum(self):
        hypo = HypoexponentialLatency([30.0, 30.0], [90.0, 70.0])
        assert hypo.variance == pytest.approx(
            1.0 / 60.0**2 + 1.0 / 40.0**2
        )

    def test_cdf_monotone(self):
        hypo = HypoexponentialLatency([30.0, 30.0], [90.0, 70.0])
        ts = np.linspace(0.0, 0.3, 50)
        values = [hypo.cdf(float(t)) for t in ts]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_percentile_inverts_cdf(self):
        hypo = HypoexponentialLatency([30.0, 30.0], [90.0, 70.0])
        for q in (0.1, 0.5, 0.9, 0.99):
            assert hypo.cdf(hypo.percentile(q)) == pytest.approx(q, abs=1e-9)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        thetas = (60.0, 40.0)
        samples = rng.exponential(1.0 / thetas[0], 200_000) + rng.exponential(
            1.0 / thetas[1], 200_000
        )
        hypo = HypoexponentialLatency([30.0, 30.0], [90.0, 70.0])
        assert hypo.percentile(0.99) == pytest.approx(
            float(np.percentile(samples, 99)), rel=0.02
        )
        assert hypo.cdf(hypo.mean) == pytest.approx(
            float(np.mean(samples <= hypo.mean)), abs=0.01
        )


class TestRepeatedRates:
    def test_equal_stations_erlang_limit(self):
        # Two identical stations: Erlang(2, theta); mean 2/theta,
        # median = Erlang quantile.
        hypo = HypoexponentialLatency([20.0, 20.0], [70.0, 70.0])
        theta = 50.0
        assert hypo.mean == pytest.approx(2.0 / theta, rel=1e-6)
        rng = np.random.default_rng(1)
        samples = rng.exponential(1.0 / theta, 200_000) + rng.exponential(
            1.0 / theta, 200_000
        )
        assert hypo.percentile(0.9) == pytest.approx(
            float(np.percentile(samples, 90)), rel=0.02
        )

    def test_survival(self):
        hypo = HypoexponentialLatency([10.0], [50.0])
        t = hypo.percentile(0.99)
        assert hypo.survival(t) == pytest.approx(0.01, abs=1e-9)

    def test_bad_percentile(self):
        hypo = HypoexponentialLatency([10.0], [50.0])
        with pytest.raises(ValidationError):
            hypo.percentile(1.0)
