"""Unit tests for Kleinrock flow merging/splitting and traffic equations."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing import kleinrock


class TestMergeFlows:
    def test_sum(self):
        assert kleinrock.merge_flows([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_empty(self):
        assert kleinrock.merge_flows([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.merge_flows([1.0, -0.1])


class TestSplitFlow:
    def test_thinning(self):
        branches = kleinrock.split_flow(10.0, [0.5, 0.3])
        assert branches == [pytest.approx(5.0), pytest.approx(3.0)]

    def test_full_split(self):
        branches = kleinrock.split_flow(10.0, [0.5, 0.5])
        assert sum(branches) == pytest.approx(10.0)

    def test_probabilities_over_one_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.split_flow(10.0, [0.7, 0.5])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.split_flow(10.0, [-0.1])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.split_flow(-1.0, [0.5])


class TestTrafficEquations:
    def test_no_routing_is_identity(self):
        lam = kleinrock.solve_traffic_equations(
            [3.0, 4.0], np.zeros((2, 2))
        )
        assert lam == pytest.approx([3.0, 4.0])

    def test_tandem_chain(self):
        # 0 -> 1 -> 2, all traffic flows through.
        routing = np.array(
            [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]]
        )
        lam = kleinrock.solve_traffic_equations([5.0, 0.0, 0.0], routing)
        assert lam == pytest.approx([5.0, 5.0, 5.0])

    def test_feedback_loop(self):
        # Single station, feedback with probability q: lambda = lam0/(1-q).
        routing = np.array([[0.25]])
        lam = kleinrock.solve_traffic_equations([3.0], routing)
        assert lam == pytest.approx([4.0])

    def test_chain_with_loss_feedback(self):
        # The paper's Fig. 3: two stations, destination NACKs back to the
        # head with probability 1 - P; steady state lambda = lam0 / P.
        p = 0.9
        routing = np.array([[0.0, 1.0], [1.0 - p, 0.0]])
        lam = kleinrock.solve_traffic_equations([9.0, 0.0], routing)
        assert lam == pytest.approx([10.0, 10.0])

    def test_probabilistic_branch(self):
        # Station 0 splits 60/40 to stations 1 and 2.
        routing = np.array(
            [[0.0, 0.6, 0.4], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]]
        )
        lam = kleinrock.solve_traffic_equations([10.0, 0.0, 0.0], routing)
        assert lam == pytest.approx([10.0, 6.0, 4.0])

    def test_closed_loop_rejected(self):
        # All traffic circulates forever: not an open network.
        routing = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValidationError):
            kleinrock.solve_traffic_equations([1.0, 0.0], routing)

    def test_row_sum_over_one_rejected(self):
        routing = np.array([[0.6, 0.6], [0.0, 0.0]])
        with pytest.raises(ValidationError):
            kleinrock.solve_traffic_equations([1.0, 0.0], routing)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.solve_traffic_equations([1.0], np.zeros((2, 2)))

    def test_negative_external_rejected(self):
        with pytest.raises(ValidationError):
            kleinrock.solve_traffic_equations([-1.0], np.zeros((1, 1)))
