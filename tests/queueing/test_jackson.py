"""Unit tests for the open Jackson network solver and chain model."""

import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.jackson import ChainFeedbackModel, OpenJacksonNetwork
from repro.queueing.mm1 import MM1Queue


class TestOpenJacksonNetwork:
    def test_single_station_is_mm1(self):
        net = OpenJacksonNetwork([10.0], [[0.0]], [5.0])
        sol = net.solve()
        mm1 = MM1Queue(5.0, 10.0)
        assert sol.node_metrics[0].mean_response_time == pytest.approx(
            mm1.mean_response_time
        )
        assert sol.node_metrics[0].mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system
        )

    def test_tandem_network(self):
        net = OpenJacksonNetwork(
            [10.0, 8.0],
            [[0.0, 1.0], [0.0, 0.0]],
            [5.0, 0.0],
        )
        sol = net.solve()
        assert sol.node_metrics[0].arrival_rate == pytest.approx(5.0)
        assert sol.node_metrics[1].arrival_rate == pytest.approx(5.0)
        expected = 1.0 / (10.0 - 5.0) + 1.0 / (8.0 - 5.0)
        assert sol.mean_network_response_time == pytest.approx(expected)

    def test_total_number_is_sum(self):
        net = OpenJacksonNetwork(
            [10.0, 10.0],
            [[0.0, 0.5], [0.0, 0.0]],
            [4.0, 2.0],
        )
        sol = net.solve()
        assert sol.mean_total_number == pytest.approx(
            sum(m.mean_number_in_system for m in sol.node_metrics)
        )

    def test_bottleneck(self):
        net = OpenJacksonNetwork(
            [10.0, 6.0],
            [[0.0, 1.0], [0.0, 0.0]],
            [5.0, 0.0],
        )
        sol = net.solve()
        assert sol.bottleneck().index == 1

    def test_unstable_station_raises(self):
        net = OpenJacksonNetwork([4.0], [[0.0]], [5.0])
        assert not net.is_stable()
        with pytest.raises(UnstableQueueError):
            net.solve()

    def test_invalid_service_rate(self):
        with pytest.raises(ValidationError):
            OpenJacksonNetwork([0.0], [[0.0]], [1.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            OpenJacksonNetwork([10.0, 10.0], [[0.0]], [1.0, 1.0])
        with pytest.raises(ValidationError):
            OpenJacksonNetwork([10.0], [[0.0]], [1.0, 2.0])

    def test_response_time_undefined_without_traffic(self):
        net = OpenJacksonNetwork([10.0], [[0.0]], [0.0])
        sol = net.solve()
        with pytest.raises(ValidationError):
            _ = sol.mean_network_response_time


class TestChainFeedbackModel:
    def test_paper_closed_forms(self):
        # E[T_i] = 1 / (P mu_i - lambda0); E[N_i] = lambda0 / (P mu_i - lambda0).
        model = ChainFeedbackModel(
            external_rate=4.0,
            service_rates=[10.0, 8.0],
            delivery_probability=0.8,
        )
        assert model.mean_response_time_at(0) == pytest.approx(
            1.0 / (0.8 * 10.0 - 4.0)
        )
        assert model.mean_number_at(1) == pytest.approx(
            4.0 / (0.8 * 8.0 - 4.0)
        )

    def test_equivalent_rate(self):
        model = ChainFeedbackModel(4.0, [10.0], 0.5)
        assert model.equivalent_rate == pytest.approx(8.0)

    def test_no_loss_reduces_to_tandem(self):
        model = ChainFeedbackModel(5.0, [10.0, 8.0], 1.0)
        expected = 1.0 / 5.0 + 1.0 / 3.0
        assert model.total_response_time() == pytest.approx(expected)

    def test_loss_increases_latency(self):
        t_clean = ChainFeedbackModel(4.0, [10.0], 1.0).total_response_time()
        t_lossy = ChainFeedbackModel(4.0, [10.0], 0.9).total_response_time()
        assert t_lossy > t_clean

    def test_stability(self):
        assert ChainFeedbackModel(4.0, [10.0], 0.5).is_stable()
        assert not ChainFeedbackModel(6.0, [10.0], 0.5).is_stable()

    def test_unstable_raises(self):
        model = ChainFeedbackModel(6.0, [10.0], 0.5)
        with pytest.raises(UnstableQueueError):
            model.total_response_time()

    def test_empty_chain_rejected(self):
        with pytest.raises(ValidationError):
            ChainFeedbackModel(1.0, [], 1.0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValidationError):
            ChainFeedbackModel(1.0, [10.0], 0.0)

    def test_agrees_with_explicit_jackson_network(self):
        # The chain + feedback loop solved as an explicit Jackson network
        # must produce the same per-station arrival rates and latencies.
        model = ChainFeedbackModel(
            external_rate=4.0,
            service_rates=[12.0, 9.0, 7.0],
            delivery_probability=0.9,
        )
        net = model.to_jackson_network()
        sol = net.solve()
        for i in range(3):
            assert sol.node_metrics[i].arrival_rate == pytest.approx(
                model.equivalent_rate
            )
            # The station metric is per *pass*; the paper's E[T_i]
            # aggregates a packet's 1/P passes: E[T_i] = W_station / P.
            assert sol.node_metrics[i].mean_response_time / 0.9 == pytest.approx(
                model.mean_response_time_at(i)
            )

    def test_jackson_network_total_latency_matches_closed_form(self):
        # Little's law over the external rate: E[T] = E[N]/lambda0 with
        # E[N_i] = lambda0/(P mu_i - lambda0), so the network-level E[T]
        # equals the paper's sum of per-VNF response times, E[T] = sum E[T_i]
        # (each packet makes 1/P passes, each pass P times faster than E[T_i]).
        model = ChainFeedbackModel(4.0, [12.0, 9.0], 0.8)
        sol = model.to_jackson_network().solve()
        assert sol.mean_network_response_time == pytest.approx(
            model.total_response_time()
        )
