"""Unit tests for the Little's-law helper functions."""

import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing import littles_law


class TestUtilization:
    def test_basic(self):
        assert littles_law.utilization(5.0, 10.0) == pytest.approx(0.5)

    def test_zero_arrivals(self):
        assert littles_law.utilization(0.0, 10.0) == 0.0

    def test_overload_allowed(self):
        # utilization() itself reports rho >= 1; stability is separate.
        assert littles_law.utilization(20.0, 10.0) == pytest.approx(2.0)

    def test_bad_service_rate(self):
        with pytest.raises(ValidationError):
            littles_law.utilization(1.0, 0.0)

    def test_bad_arrival_rate(self):
        with pytest.raises(ValidationError):
            littles_law.utilization(-1.0, 10.0)


class TestRequireStable:
    def test_stable_passes(self):
        littles_law.require_stable(0.99)

    def test_unstable_raises(self):
        with pytest.raises(UnstableQueueError):
            littles_law.require_stable(1.0)

    def test_error_carries_context(self):
        with pytest.raises(UnstableQueueError, match="my-instance"):
            littles_law.require_stable(1.5, context="my-instance")


class TestMeans:
    def test_mean_number(self):
        assert littles_law.mean_number_in_system(5.0, 10.0) == pytest.approx(1.0)

    def test_mean_response(self):
        assert littles_law.mean_response_time(5.0, 10.0) == pytest.approx(0.2)

    def test_mean_waiting(self):
        w = littles_law.mean_response_time(5.0, 10.0)
        wq = littles_law.mean_waiting_time(5.0, 10.0)
        assert wq == pytest.approx(w - 0.1)

    def test_mean_queue_length(self):
        # rho^2/(1-rho) with rho=0.5 -> 0.5.
        assert littles_law.mean_queue_length(5.0, 10.0) == pytest.approx(0.5)

    def test_all_raise_when_unstable(self):
        for fn in (
            littles_law.mean_number_in_system,
            littles_law.mean_response_time,
            littles_law.mean_waiting_time,
            littles_law.mean_queue_length,
        ):
            with pytest.raises(UnstableQueueError):
                fn(10.0, 10.0)
