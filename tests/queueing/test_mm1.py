"""Unit tests for the M/M/1 queue analytics."""

import math

import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.mm1 import MM1Queue


class TestConstruction:
    def test_valid_queue(self):
        q = MM1Queue(arrival_rate=5.0, service_rate=10.0)
        assert q.rho == pytest.approx(0.5)

    def test_zero_arrivals_allowed(self):
        q = MM1Queue(arrival_rate=0.0, service_rate=10.0)
        assert q.rho == 0.0
        assert q.mean_number_in_system == 0.0

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValidationError):
            MM1Queue(arrival_rate=-1.0, service_rate=10.0)

    def test_zero_service_rejected(self):
        with pytest.raises(ValidationError):
            MM1Queue(arrival_rate=1.0, service_rate=0.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ValidationError):
            MM1Queue(arrival_rate=1.0, service_rate=-5.0)


class TestStability:
    def test_stable_below_capacity(self):
        assert MM1Queue(9.0, 10.0).is_stable

    def test_unstable_at_capacity(self):
        assert not MM1Queue(10.0, 10.0).is_stable

    def test_unstable_above_capacity(self):
        assert not MM1Queue(11.0, 10.0).is_stable

    def test_unstable_raises_on_metrics(self):
        q = MM1Queue(10.0, 10.0)
        with pytest.raises(UnstableQueueError):
            _ = q.mean_number_in_system
        with pytest.raises(UnstableQueueError):
            _ = q.mean_response_time
        with pytest.raises(UnstableQueueError):
            q.prob_n_in_system(0)


class TestSteadyState:
    def test_mean_number_formula(self):
        # rho = 0.5 -> N = 1.
        assert MM1Queue(5.0, 10.0).mean_number_in_system == pytest.approx(1.0)

    def test_mean_response_formula(self):
        # W = 1 / (mu - lambda).
        assert MM1Queue(5.0, 10.0).mean_response_time == pytest.approx(0.2)

    def test_littles_law_consistency(self):
        q = MM1Queue(7.0, 10.0)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_time
        )

    def test_waiting_plus_service_is_response(self):
        q = MM1Queue(4.0, 9.0)
        assert q.mean_waiting_time + 1.0 / q.service_rate == pytest.approx(
            q.mean_response_time
        )

    def test_queue_length_excludes_in_service(self):
        q = MM1Queue(6.0, 10.0)
        assert q.mean_queue_length == pytest.approx(
            q.mean_number_in_system - q.rho
        )

    def test_response_time_grows_with_load(self):
        w = [MM1Queue(lam, 10.0).mean_response_time for lam in (1.0, 5.0, 9.0)]
        assert w[0] < w[1] < w[2]


class TestDistribution:
    def test_pi_geometric(self):
        q = MM1Queue(5.0, 10.0)
        # pi(n) = (1 - rho) rho^n with rho = 0.5.
        assert q.prob_n_in_system(0) == pytest.approx(0.5)
        assert q.prob_n_in_system(1) == pytest.approx(0.25)
        assert q.prob_n_in_system(3) == pytest.approx(0.0625)

    def test_pi_sums_to_one(self):
        q = MM1Queue(8.0, 10.0)
        total = sum(q.prob_n_in_system(n) for n in range(500))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_mean_matches_distribution(self):
        q = MM1Queue(6.0, 10.0)
        mean = sum(n * q.prob_n_in_system(n) for n in range(2000))
        assert mean == pytest.approx(q.mean_number_in_system, rel=1e-6)

    def test_tail_probability(self):
        q = MM1Queue(5.0, 10.0)
        assert q.prob_more_than(0) == pytest.approx(0.5)
        assert q.prob_more_than(2) == pytest.approx(0.125)

    def test_negative_n_rejected(self):
        q = MM1Queue(5.0, 10.0)
        with pytest.raises(ValidationError):
            q.prob_n_in_system(-1)
        with pytest.raises(ValidationError):
            q.prob_more_than(-2)


class TestResponseTimeDistribution:
    def test_cdf_limits(self):
        q = MM1Queue(5.0, 10.0)
        assert q.response_time_cdf(-1.0) == 0.0
        assert q.response_time_cdf(0.0) == pytest.approx(0.0)
        assert q.response_time_cdf(1e9) == pytest.approx(1.0)

    def test_cdf_at_mean(self):
        q = MM1Queue(5.0, 10.0)
        # Exponential: F(mean) = 1 - 1/e.
        assert q.response_time_cdf(q.mean_response_time) == pytest.approx(
            1.0 - math.exp(-1.0)
        )

    def test_percentile_inverts_cdf(self):
        q = MM1Queue(5.0, 10.0)
        for p in (0.1, 0.5, 0.9, 0.99):
            t = q.response_time_percentile(p)
            assert q.response_time_cdf(t) == pytest.approx(p)

    def test_p99_exceeds_mean(self):
        q = MM1Queue(5.0, 10.0)
        assert q.response_time_percentile(0.99) > q.mean_response_time

    def test_bad_percentile_rejected(self):
        q = MM1Queue(5.0, 10.0)
        with pytest.raises(ValidationError):
            q.response_time_percentile(1.0)
        with pytest.raises(ValidationError):
            q.response_time_percentile(-0.1)


class TestHelpers:
    def test_with_arrival_rate(self):
        q = MM1Queue(5.0, 10.0).with_arrival_rate(2.0)
        assert q.arrival_rate == 2.0
        assert q.service_rate == 10.0

    def test_headroom(self):
        assert MM1Queue(4.0, 10.0).headroom() == pytest.approx(6.0)
        assert MM1Queue(12.0, 10.0).headroom() == pytest.approx(-2.0)
