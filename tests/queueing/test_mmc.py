"""Unit tests for the M/M/c (Erlang-C) queue analytics."""

import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mmc import MMCQueue


class TestConstruction:
    def test_valid(self):
        q = MMCQueue(arrival_rate=5.0, service_rate=3.0, servers=2)
        assert q.rho == pytest.approx(5.0 / 6.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValidationError):
            MMCQueue(arrival_rate=1.0, service_rate=1.0, servers=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValidationError):
            MMCQueue(arrival_rate=-1.0, service_rate=1.0, servers=1)

    def test_zero_service_rejected(self):
        with pytest.raises(ValidationError):
            MMCQueue(arrival_rate=1.0, service_rate=0.0, servers=1)


class TestReducesToMM1:
    """With c=1 every metric must equal the M/M/1 closed forms."""

    @pytest.mark.parametrize("lam", [1.0, 4.0, 8.5])
    def test_response_time(self, lam):
        mmc = MMCQueue(arrival_rate=lam, service_rate=10.0, servers=1)
        mm1 = MM1Queue(arrival_rate=lam, service_rate=10.0)
        assert mmc.mean_response_time == pytest.approx(mm1.mean_response_time)

    def test_number_in_system(self):
        mmc = MMCQueue(arrival_rate=6.0, service_rate=10.0, servers=1)
        mm1 = MM1Queue(arrival_rate=6.0, service_rate=10.0)
        assert mmc.mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system
        )

    def test_erlang_c_equals_rho(self):
        # For c=1 the probability of waiting equals rho.
        q = MMCQueue(arrival_rate=7.0, service_rate=10.0, servers=1)
        assert q.erlang_c() == pytest.approx(0.7)

    def test_distribution(self):
        mmc = MMCQueue(arrival_rate=5.0, service_rate=10.0, servers=1)
        mm1 = MM1Queue(arrival_rate=5.0, service_rate=10.0)
        for n in range(6):
            assert mmc.prob_n_in_system(n) == pytest.approx(
                mm1.prob_n_in_system(n)
            )


class TestErlangC:
    def test_known_value(self):
        # Classic Erlang-C check: a = 2 Erlang over c = 3 servers.
        q = MMCQueue(arrival_rate=2.0, service_rate=1.0, servers=3)
        # C(3, 2) = (a^c/c!) / ((1-rho)(sum + a^c/c!/(1-rho)))... standard
        # tables give ~0.4444.
        assert q.erlang_c() == pytest.approx(0.4444, abs=1e-3)

    def test_stability_guard(self):
        q = MMCQueue(arrival_rate=3.0, service_rate=1.0, servers=3)
        with pytest.raises(UnstableQueueError):
            q.erlang_c()
        with pytest.raises(UnstableQueueError):
            _ = q.mean_response_time

    def test_pooled_beats_split(self):
        # One M/M/2 at rate mu beats two M/M/1 each taking half the load.
        pooled = MMCQueue(arrival_rate=16.0, service_rate=10.0, servers=2)
        split = MM1Queue(arrival_rate=8.0, service_rate=10.0)
        assert pooled.mean_response_time < split.mean_response_time

    def test_littles_law(self):
        q = MMCQueue(arrival_rate=15.0, service_rate=10.0, servers=2)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_time
        )

    def test_distribution_sums_to_one(self):
        q = MMCQueue(arrival_rate=15.0, service_rate=10.0, servers=2)
        total = sum(q.prob_n_in_system(n) for n in range(400))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_negative_n_rejected(self):
        q = MMCQueue(arrival_rate=1.0, service_rate=10.0, servers=2)
        with pytest.raises(ValidationError):
            q.prob_n_in_system(-1)
