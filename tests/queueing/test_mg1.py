"""Unit tests for the M/G/1 (Pollaczek-Khinchine) queue."""

import pytest

from repro.exceptions import UnstableQueueError, ValidationError
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue


class TestConstruction:
    def test_valid(self):
        q = MG1Queue(arrival_rate=5.0, service_rate=10.0, service_cv2=0.5)
        assert q.rho == pytest.approx(0.5)

    def test_negative_cv2_rejected(self):
        with pytest.raises(ValidationError):
            MG1Queue(1.0, 10.0, service_cv2=-0.1)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValidationError):
            MG1Queue(-1.0, 10.0)
        with pytest.raises(ValidationError):
            MG1Queue(1.0, 0.0)


class TestReducesToMM1:
    @pytest.mark.parametrize("lam", [1.0, 5.0, 9.0])
    def test_cv2_one_matches_mm1(self, lam):
        mg1 = MG1Queue(lam, 10.0, service_cv2=1.0)
        mm1 = MM1Queue(lam, 10.0)
        assert mg1.mean_response_time == pytest.approx(mm1.mean_response_time)
        assert mg1.mean_waiting_time == pytest.approx(mm1.mean_waiting_time)
        assert mg1.mean_number_in_system == pytest.approx(
            mm1.mean_number_in_system
        )


class TestMD1:
    def test_deterministic_halves_waiting(self):
        # M/D/1 waits exactly half of M/M/1.
        md1 = MG1Queue(5.0, 10.0, service_cv2=0.0)
        mm1 = MM1Queue(5.0, 10.0)
        assert md1.mean_waiting_time == pytest.approx(
            mm1.mean_waiting_time / 2.0
        )

    def test_known_value(self):
        # rho=0.5, mu=10, cs2=0: Wq = 0.5 * 1 / (2 * 10 * 0.5) = 0.05.
        q = MG1Queue(5.0, 10.0, service_cv2=0.0)
        assert q.mean_waiting_time == pytest.approx(0.05)


class TestVariability:
    def test_waiting_grows_with_cv2(self):
        waits = [
            MG1Queue(6.0, 10.0, service_cv2=c).mean_waiting_time
            for c in (0.0, 1.0, 4.0)
        ]
        assert waits[0] < waits[1] < waits[2]

    def test_littles_law(self):
        q = MG1Queue(6.0, 10.0, service_cv2=2.0)
        assert q.mean_number_in_system == pytest.approx(
            q.arrival_rate * q.mean_response_time
        )
        assert q.mean_queue_length == pytest.approx(
            q.arrival_rate * q.mean_waiting_time
        )

    def test_model_error_signs(self):
        # Exponential assumption over-estimates for cs2 < 1, under- for > 1.
        assert MG1Queue(6.0, 10.0, 0.0).exponential_model_error() > 0.0
        assert MG1Queue(6.0, 10.0, 3.0).exponential_model_error() < 0.0
        assert MG1Queue(6.0, 10.0, 1.0).exponential_model_error() == pytest.approx(0.0)


class TestStability:
    def test_unstable_raises(self):
        q = MG1Queue(10.0, 10.0, 1.0)
        with pytest.raises(UnstableQueueError):
            _ = q.mean_waiting_time
