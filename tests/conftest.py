"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Deterministic property tests: the same examples run every time, so a
# green suite stays green regardless of the machine or the run.
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF, VNFCategory


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_vnfs() -> list:
    """Three small VNFs with distinct demands and rates."""
    return [
        VNF("fw", demand_per_instance=10.0, num_instances=2,
            service_rate=100.0, category=VNFCategory.SECURITY),
        VNF("nat", demand_per_instance=5.0, num_instances=3,
            service_rate=200.0, category=VNFCategory.GATEWAY),
        VNF("lb", demand_per_instance=8.0, num_instances=1,
            service_rate=150.0, category=VNFCategory.LOAD_BALANCING),
    ]


@pytest.fixture
def simple_chain() -> ServiceChain:
    """A chain visiting all three simple VNFs."""
    return ServiceChain(["fw", "nat", "lb"])


@pytest.fixture
def simple_requests(simple_chain) -> list:
    """Four requests over the simple chain with varied rates."""
    return [
        Request(request_id=f"r{i}", chain=simple_chain,
                arrival_rate=rate, delivery_probability=0.99)
        for i, rate in enumerate([10.0, 20.0, 5.0, 15.0])
    ]


@pytest.fixture
def simple_capacities() -> dict:
    """Node capacities that comfortably fit the simple VNFs."""
    return {"n0": 40.0, "n1": 30.0, "n2": 25.0}
