"""Unit tests for the array-native topology view (TopologyArrays)."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.topology import (
    TopologyArrays,
    bcube,
    fat_tree,
    leaf_spine,
    random_datacenter,
)
from repro.topology.graph import DatacenterTopology

FABRICS = {
    "fattree4": lambda: fat_tree(4),
    "leafspine": lambda: leaf_spine(3, 2, 4),
    "bcube": lambda: bcube(2, 1),
    "random12": lambda: random_datacenter(
        12, rng=np.random.default_rng(20170605)
    ),
}


@pytest.fixture
def line_topology():
    """a - b - c with distinct latencies."""
    topo = DatacenterTopology()
    for key in ("a", "b", "c"):
        topo.add_compute_node(key, 10.0)
    topo.add_link("a", "b", latency=1.0)
    topo.add_link("b", "c", latency=2.0)
    return topo


class TestLineTopology:
    def test_distances(self, line_topology):
        arrays = line_topology.arrays()
        a, b, c = (arrays.vertex_index[k] for k in ("a", "b", "c"))
        assert arrays.dist[a, b] == pytest.approx(1.0)
        assert arrays.dist[a, c] == pytest.approx(3.0)
        assert arrays.dist[a, a] == 0.0

    def test_latency_submatrix_is_compute_only(self, line_topology):
        arrays = line_topology.arrays()
        assert arrays.latency.shape == (3, 3)
        i, j = arrays.compute_index["a"], arrays.compute_index["c"]
        assert arrays.latency[i, j] == pytest.approx(3.0)

    def test_hops(self, line_topology):
        arrays = line_topology.arrays()
        i, j = arrays.compute_index["a"], arrays.compute_index["c"]
        assert arrays.hops[i, j] == 2
        assert arrays.hops[i, i] == 0

    def test_vertex_path(self, line_topology):
        arrays = line_topology.arrays()
        a, c = arrays.vertex_index["a"], arrays.vertex_index["c"]
        path = [arrays.vertex_keys[v] for v in arrays.vertex_path(a, c)]
        assert path == ["a", "b", "c"]

    def test_disconnected_rejected(self):
        # Disconnected topologies fail validation before array build.
        topo = DatacenterTopology()
        topo.add_compute_node("a", 1.0)
        topo.add_compute_node("b", 1.0)
        topo.add_link("a", "b")
        topo.add_compute_node("c", 1.0)
        topo.add_compute_node("d", 1.0)
        topo.add_link("c", "d")
        with pytest.raises(ValidationError):
            TopologyArrays.build(topo)

    def test_path_link_csr_matches_latency(self, line_topology):
        arrays = line_topology.arrays()
        ptr, links = arrays.path_link_csr()
        C = arrays.num_compute
        for i in range(C):
            for j in range(C):
                p = i * C + j
                ids = links[ptr[p] : ptr[p + 1]]
                assert arrays.link_latency[ids].sum() == pytest.approx(
                    arrays.latency[i, j]
                )
                assert len(ids) == arrays.hops[i, j]

    def test_links_on_pairs_matches_csr_slices(self, line_topology):
        arrays = line_topology.arrays()
        src = np.array([0, 0, 2], dtype=np.int64)
        dst = np.array([1, 2, 0], dtype=np.int64)
        ids, owner = arrays.links_on_pairs(src, dst)
        ptr, links = arrays.path_link_csr()
        C = arrays.num_compute
        for i in range(len(src)):
            p = int(src[i]) * C + int(dst[i])
            expected = links[ptr[p] : ptr[p + 1]]
            np.testing.assert_array_equal(ids[owner == i], expected)


@pytest.mark.parametrize("name", sorted(FABRICS))
class TestAgainstNetworkx:
    """The APSP sweep must agree with networkx Dijkstra everywhere."""

    def test_distances_match_networkx(self, name):
        topo = FABRICS[name]()
        arrays = topo.arrays()
        lengths = dict(
            nx.all_pairs_dijkstra_path_length(topo.graph, weight="latency")
        )
        for s_key, row in lengths.items():
            s = arrays.vertex_index[s_key]
            for t_key, value in row.items():
                t = arrays.vertex_index[t_key]
                assert arrays.dist[s, t] == pytest.approx(value, rel=1e-12)

    def test_dist_symmetric(self, name):
        topo = FABRICS[name]()
        arrays = topo.arrays()
        np.testing.assert_allclose(arrays.dist, arrays.dist.T, rtol=1e-12)
        np.testing.assert_allclose(
            arrays.latency, arrays.latency.T, rtol=1e-12
        )

    def test_diagonal_zero(self, name):
        arrays = FABRICS[name]().arrays()
        assert not arrays.dist.diagonal().any()
        assert not arrays.hops.diagonal().any()

    def test_paths_realize_distances(self, name):
        """Reconstructed routes must cost exactly dist and count hops."""
        topo = FABRICS[name]()
        arrays = topo.arrays()
        rng = np.random.default_rng(7)
        V = arrays.num_vertices
        for _ in range(20):
            s, t = int(rng.integers(V)), int(rng.integers(V))
            path = arrays.vertex_path(s, t)
            cost = 0.0
            for a, b in zip(path[:-1], path[1:]):
                ids = arrays._edge_ids(
                    np.array([a]), np.array([b])
                )
                cost += float(arrays.link_latency[ids[0]])
            assert cost == pytest.approx(float(arrays.dist[s, t]), rel=1e-12)

    def test_link_columns_cover_every_edge(self, name):
        topo = FABRICS[name]()
        arrays = topo.arrays()
        assert arrays.num_links == topo.num_links
        degree = np.bincount(
            np.concatenate([arrays.link_u, arrays.link_v]),
            minlength=arrays.num_vertices,
        )
        np.testing.assert_array_equal(
            degree, np.diff(arrays.adj_ptr)
        )


class TestCaching:
    def test_arrays_cached_per_topology(self):
        topo = FABRICS["random12"]()
        assert topo.arrays() is topo.arrays()

    def test_mutation_invalidates(self):
        topo = random_datacenter(6, rng=np.random.default_rng(3))
        first = topo.arrays()
        topo.add_compute_node("extra", 5.0)
        topo.add_link("extra", "node0")
        second = topo.arrays()
        assert second is not first
        assert second.num_compute == first.num_compute + 1
