"""GraphML round-trips, foreign-file defaults, and the Abilene fixture."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.topology import (
    abilene,
    bcube,
    fat_tree,
    leaf_spine,
    load_graphml,
    random_datacenter,
    save_graphml,
)

GENERATORS = {
    "fattree4": lambda: fat_tree(4),
    "leafspine": lambda: leaf_spine(3, 2, 4),
    "bcube": lambda: bcube(2, 1),
    "random10": lambda: random_datacenter(
        10, rng=np.random.default_rng(20170605)
    ),
}


def _link_table(topo):
    """Canonical {frozenset(endpoints): (latency, bandwidth)} view."""
    return {
        frozenset((a, b)): (latency, bandwidth)
        for a, b, latency, bandwidth in topo.links()
    }


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestRoundTrip:
    def test_generator_output_round_trips(self, name, tmp_path):
        original = GENERATORS[name]()
        path = tmp_path / f"{name}.graphml"
        save_graphml(original, path)
        loaded = load_graphml(path)

        assert loaded.capacities() == original.capacities()
        assert {s.key for s in loaded.switches()} == {
            s.key for s in original.switches()
        }
        assert _link_table(loaded) == _link_table(original)

    def test_round_trip_preserves_shortest_paths(self, name, tmp_path):
        original = GENERATORS[name]()
        path = tmp_path / f"{name}.graphml"
        save_graphml(original, path)
        loaded = load_graphml(path)
        a = original.arrays()
        b = loaded.arrays()
        # Key sets match; compare through each file's own index.
        for key_s in a.compute_index:
            for key_t in a.compute_index:
                assert b.latency[
                    b.compute_index[key_s], b.compute_index[key_t]
                ] == pytest.approx(
                    a.latency[
                        a.compute_index[key_s], a.compute_index[key_t]
                    ],
                    rel=1e-12,
                )


class TestForeignFiles:
    def test_attribute_free_file_gets_defaults(self, tmp_path):
        graph = nx.Graph()
        graph.add_edge("x", "y")
        graph.add_edge("y", "z")
        path = tmp_path / "foreign.graphml"
        nx.write_graphml(graph, str(path))

        topo = load_graphml(
            path, default_capacity=42.0, default_latency=0.5,
            default_bandwidth=7.0,
        )
        assert topo.capacities() == {"x": 42.0, "y": 42.0, "z": 42.0}
        assert _link_table(topo) == {
            frozenset(("x", "y")): (0.5, 7.0),
            frozenset(("y", "z")): (0.5, 7.0),
        }

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_graphml(tmp_path / "nope.graphml")


class TestAbilene:
    def test_fixture_shape(self):
        topo = abilene()
        assert topo.num_compute_nodes == 11
        assert topo.num_links == 14
        topo.validate()

    def test_all_pops_reachable(self):
        arrays = abilene().arrays()
        assert np.isfinite(arrays.latency).all()
        assert (arrays.latency[~np.eye(11, dtype=bool)] > 0).all()

    def test_overrides(self):
        topo = abilene(capacity=123.0, bandwidth=9.0)
        assert set(topo.capacities().values()) == {123.0}
        assert {bw for _, _, _, bw in topo.links()} == {9.0}

    def test_solves_end_to_end(self):
        """BFDSU places a small problem on the Abilene fabric."""
        from repro.workload.generator import WorkloadGenerator

        gen = WorkloadGenerator(np.random.default_rng(20170713))
        w = gen.workload(num_vnfs=6, num_nodes=11, num_requests=20)
        total = sum(f.total_demand for f in w.vnfs)
        biggest = max(f.total_demand for f in w.vnfs)
        topo = abilene(capacity=max(2.0 * total / 11, 1.5 * biggest))
        problem = PlacementProblem(
            vnfs=w.vnfs, capacities=topo.capacities(), chains=w.chains
        )
        result = BFDSUPlacement(
            rng=np.random.default_rng(20170713)
        ).place(problem)
        assert set(result.placement) == {f.name for f in w.vnfs}
        assert set(result.placement.values()) <= set(topo.capacities())
