"""Unit tests for shortest-path routing."""

import pytest

from repro.exceptions import ValidationError
from repro.topology import Router, leaf_spine
from repro.topology.graph import DatacenterTopology


@pytest.fixture
def line_topology():
    """a - b - c with distinct latencies."""
    topo = DatacenterTopology()
    for key in ("a", "b", "c"):
        topo.add_compute_node(key, 10.0)
    topo.add_link("a", "b", latency=1.0)
    topo.add_link("b", "c", latency=2.0)
    return topo


class TestPathQueries:
    def test_direct_path(self, line_topology):
        router = Router(line_topology)
        assert router.path("a", "b") == ["a", "b"]
        assert router.latency("a", "b") == pytest.approx(1.0)

    def test_two_hop_path(self, line_topology):
        router = Router(line_topology)
        assert router.path("a", "c") == ["a", "b", "c"]
        assert router.latency("a", "c") == pytest.approx(3.0)
        assert router.hop_count("a", "c") == 2

    def test_self_path(self, line_topology):
        router = Router(line_topology)
        assert router.latency("a", "a") == 0.0
        assert router.hop_count("a", "a") == 0

    def test_prefers_low_latency(self):
        topo = DatacenterTopology()
        for key in ("a", "b", "c"):
            topo.add_compute_node(key, 10.0)
        topo.add_link("a", "c", latency=10.0)
        topo.add_link("a", "b", latency=1.0)
        topo.add_link("b", "c", latency=1.0)
        router = Router(topo)
        assert router.path("a", "c") == ["a", "b", "c"]

    def test_unknown_vertex(self, line_topology):
        router = Router(line_topology)
        with pytest.raises(ValidationError):
            router.path("a", "ghost")
        with pytest.raises(ValidationError):
            router.latency("ghost", "a")


class TestWaypointLatency:
    def test_chain_of_waypoints(self, line_topology):
        router = Router(line_topology)
        assert router.path_latency(["a", "b", "c"]) == pytest.approx(3.0)

    def test_duplicate_waypoints_free(self, line_topology):
        router = Router(line_topology)
        assert router.path_latency(["a", "a", "b"]) == pytest.approx(1.0)

    def test_single_waypoint(self, line_topology):
        assert Router(line_topology).path_latency(["a"]) == 0.0


class TestPathCacheBound:
    def test_cache_never_exceeds_bound(self, line_topology):
        router = Router(line_topology, path_cache_size=2)
        for source in ("a", "b", "c"):
            for target in ("a", "b", "c"):
                if source != target:
                    router.path(source, target)
        assert len(router._path_cache) <= 2

    def test_lru_evicts_oldest(self, line_topology):
        router = Router(line_topology, path_cache_size=2)
        router.path("a", "b")
        router.path("b", "c")
        router.path("a", "b")  # refresh (a, b)
        router.path("a", "c")  # evicts (b, c), the least recent
        arrays = line_topology.arrays()
        a, b, c = (arrays.vertex_index[k] for k in ("a", "b", "c"))
        assert set(router._path_cache) == {(a, b), (a, c)}

    def test_cached_path_is_a_copy(self, line_topology):
        router = Router(line_topology)
        first = router.path("a", "c")
        first.append("tampered")
        assert router.path("a", "c") == ["a", "b", "c"]

    def test_invalid_cache_size_rejected(self, line_topology):
        with pytest.raises(ValidationError):
            Router(line_topology, path_cache_size=0)


class TestPrebuiltArraysInput:
    def test_router_accepts_topology_arrays(self, line_topology):
        router = Router(line_topology.arrays())
        assert router.path("a", "c") == ["a", "b", "c"]
        assert router.latency("a", "c") == pytest.approx(3.0)
        assert router.hop_count("a", "c") == 2


class TestAveragePairwise:
    def test_line(self, line_topology):
        router = Router(line_topology)
        # Pairs: (a,b)=1, (a,c)=3, (b,c)=2 -> mean 2.
        assert router.average_pairwise_latency() == pytest.approx(2.0)

    def test_singleton_is_zero(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 1.0)
        assert Router(topo).average_pairwise_latency() == 0.0

    def test_fabric_symmetric(self):
        topo = leaf_spine(2, 2, 2, link_latency=1e-4)
        router = Router(topo)
        # Same-leaf pairs: 2 hops; cross-leaf: 4 hops.
        assert router.hop_count("server0", "server1") == 2
        assert router.hop_count("server0", "server2") == 4
