"""Unit tests for the BCube topology generator."""

import pytest

from repro.exceptions import ValidationError
from repro.topology import Router, bcube


class TestDimensions:
    def test_base_cell(self):
        topo = bcube(4, 0)
        assert topo.num_compute_nodes == 4
        assert topo.num_switches == 1
        assert topo.num_links == 4

    def test_bcube_2_1(self):
        topo = bcube(2, 1)
        # 4 servers, 2 levels x 2 switches, each server 2 links.
        assert topo.num_compute_nodes == 4
        assert topo.num_switches == 4
        assert topo.num_links == 8

    def test_bcube_4_1(self):
        topo = bcube(4, 1)
        assert topo.num_compute_nodes == 16
        assert topo.num_switches == 8
        # Each server has k+1 = 2 links.
        assert topo.num_links == 32

    def test_connected(self):
        bcube(4, 1).validate()
        bcube(3, 2).validate()


class TestStructure:
    def test_level0_groups_consecutive(self):
        topo = bcube(2, 1)
        assert set(topo.neighbors("sw0-0")) == {"server0", "server1"}
        assert set(topo.neighbors("sw0-1")) == {"server2", "server3"}

    def test_level1_groups_strided(self):
        topo = bcube(2, 1)
        assert set(topo.neighbors("sw1-0")) == {"server0", "server2"}
        assert set(topo.neighbors("sw1-1")) == {"server1", "server3"}

    def test_one_hop_pairs(self):
        router = Router(bcube(2, 1))
        # Same level-0 switch: 2 hops through it.
        assert router.hop_count("server0", "server1") == 2
        # Same level-1 switch: also 2 hops.
        assert router.hop_count("server0", "server2") == 2

    def test_capacity_fn(self):
        topo = bcube(2, 0, capacity_fn=lambda i: 10.0 * (i + 1))
        caps = topo.capacities()
        assert caps["server0"] == 10.0
        assert caps["server1"] == 20.0


class TestValidation:
    def test_bad_n(self):
        with pytest.raises(ValidationError):
            bcube(1, 0)

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            bcube(2, -1)

    def test_size_guard(self):
        with pytest.raises(ValidationError):
            bcube(8, 4)  # 32768 servers
