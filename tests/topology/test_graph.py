"""Unit tests for the core topology data model."""

import pytest

from repro.exceptions import ValidationError
from repro.topology.graph import ComputeNode, DatacenterTopology, Switch


class TestVertices:
    def test_add_compute_node(self):
        topo = DatacenterTopology()
        node = topo.add_compute_node("s0", 100.0)
        assert isinstance(node, ComputeNode)
        assert topo.num_compute_nodes == 1

    def test_add_switch(self):
        topo = DatacenterTopology()
        sw = topo.add_switch("sw0")
        assert isinstance(sw, Switch)
        assert topo.num_switches == 1

    def test_duplicate_key_rejected(self):
        topo = DatacenterTopology()
        topo.add_compute_node("x", 1.0)
        with pytest.raises(ValidationError):
            topo.add_switch("x")

    def test_zero_capacity_rejected(self):
        topo = DatacenterTopology()
        with pytest.raises(ValidationError):
            topo.add_compute_node("s0", 0.0)

    def test_capacities_map(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 10.0)
        topo.add_compute_node("b", 20.0)
        topo.add_switch("sw")
        assert topo.capacities() == {"a": 10.0, "b": 20.0}

    def test_lookup(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 10.0)
        assert topo.compute_node("a").capacity == 10.0
        with pytest.raises(ValidationError):
            topo.compute_node("ghost")


class TestLinks:
    def _pair(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 10.0)
        topo.add_compute_node("b", 10.0)
        return topo

    def test_add_link(self):
        topo = self._pair()
        topo.add_link("a", "b", latency=2e-4)
        assert topo.num_links == 1
        assert topo.link_latency("a", "b") == pytest.approx(2e-4)

    def test_unknown_vertex_rejected(self):
        topo = self._pair()
        with pytest.raises(ValidationError):
            topo.add_link("a", "ghost")

    def test_self_loop_rejected(self):
        topo = self._pair()
        with pytest.raises(ValidationError):
            topo.add_link("a", "a")

    def test_negative_latency_rejected(self):
        topo = self._pair()
        with pytest.raises(ValidationError):
            topo.add_link("a", "b", latency=-1.0)

    def test_missing_link_latency_raises(self):
        topo = self._pair()
        with pytest.raises(ValidationError):
            topo.link_latency("a", "b")

    def test_neighbors(self):
        topo = self._pair()
        topo.add_link("a", "b")
        assert list(topo.neighbors("a")) == ["b"]


class TestValidation:
    def test_connected_passes(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 1.0)
        topo.add_compute_node("b", 1.0)
        topo.add_link("a", "b")
        topo.validate()

    def test_disconnected_rejected(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 1.0)
        topo.add_compute_node("b", 1.0)
        with pytest.raises(ValidationError):
            topo.validate()

    def test_no_compute_nodes_rejected(self):
        topo = DatacenterTopology()
        topo.add_switch("sw")
        with pytest.raises(ValidationError):
            topo.validate()

    def test_total_capacity(self):
        topo = DatacenterTopology()
        topo.add_compute_node("a", 10.0)
        topo.add_compute_node("b", 15.0)
        assert topo.total_capacity() == pytest.approx(25.0)
