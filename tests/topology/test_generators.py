"""Unit tests for the topology generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.topology import fat_tree, leaf_spine, random_datacenter


class TestFatTree:
    def test_k4_dimensions(self):
        topo = fat_tree(4)
        # k=4: k^3/4 = 16 servers.
        assert topo.num_compute_nodes == 16

    def test_k4_switch_count(self):
        topo = fat_tree(4)
        # (k/2)^2 core + k pods x (k/2 agg + k/2 edge) = 4 + 16 = 20.
        assert topo.num_switches == 20

    def test_connected(self):
        fat_tree(4).validate()

    def test_odd_k_rejected(self):
        with pytest.raises(ValidationError):
            fat_tree(3)

    def test_max_servers_truncation(self):
        topo = fat_tree(4, max_servers=5)
        assert topo.num_compute_nodes == 5

    def test_capacity_fn(self):
        topo = fat_tree(2, capacity_fn=lambda i: 100.0 + i)
        caps = sorted(topo.capacities().values())
        assert caps[0] == pytest.approx(100.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(ValidationError):
            fat_tree(4, max_servers=0)


class TestLeafSpine:
    def test_dimensions(self):
        topo = leaf_spine(num_leaves=3, num_spines=2, servers_per_leaf=4)
        assert topo.num_compute_nodes == 12
        assert topo.num_switches == 5
        # leaf-spine links (3x2) + server links (12).
        assert topo.num_links == 6 + 12

    def test_connected(self):
        leaf_spine(2, 2, 2).validate()

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            leaf_spine(0, 1, 1)
        with pytest.raises(ValidationError):
            leaf_spine(1, 0, 1)
        with pytest.raises(ValidationError):
            leaf_spine(1, 1, 0)


class TestRandomDatacenter:
    def test_size_and_connectivity(self):
        topo = random_datacenter(20, rng=np.random.default_rng(1))
        assert topo.num_compute_nodes == 20
        topo.validate()

    def test_capacity_range(self):
        topo = random_datacenter(
            50, capacity_range=(100.0, 200.0), rng=np.random.default_rng(2)
        )
        for cap in topo.capacities().values():
            assert 100.0 <= cap <= 200.0

    def test_explicit_capacities(self):
        caps = [10.0, 20.0, 30.0]
        topo = random_datacenter(
            3, capacities=caps, rng=np.random.default_rng(3)
        )
        assert sorted(topo.capacities().values()) == caps

    def test_capacity_count_mismatch(self):
        with pytest.raises(ValidationError):
            random_datacenter(3, capacities=[1.0])

    def test_tree_when_no_extra_edges(self):
        topo = random_datacenter(
            10, extra_edge_probability=0.0, rng=np.random.default_rng(4)
        )
        assert topo.num_links == 9

    def test_clique_when_probability_one(self):
        topo = random_datacenter(
            6, extra_edge_probability=1.0, rng=np.random.default_rng(5)
        )
        assert topo.num_links == 15

    def test_deterministic_given_seed(self):
        a = random_datacenter(10, rng=np.random.default_rng(42))
        b = random_datacenter(10, rng=np.random.default_rng(42))
        assert a.capacities() == b.capacities()
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_single_node(self):
        topo = random_datacenter(1, rng=np.random.default_rng(6))
        topo.validate()

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            random_datacenter(3, extra_edge_probability=1.5)
