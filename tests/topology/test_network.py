"""Unit tests for NetworkModel — routed-flow bandwidth accounting."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.topology import NetworkModel, random_datacenter
from repro.topology.graph import DatacenterTopology

VNFS = ("fw", "lb", "ids", "nat")
NODES = ("n0", "n1", "n2")


@pytest.fixture
def line_topology():
    """n0 - n1 - n2 (link 0 = n0-n1, link 1 = n1-n2)."""
    topo = DatacenterTopology()
    for key in NODES:
        topo.add_compute_node(key, 100.0)
    topo.add_link("n0", "n1", latency=1.0, bandwidth=10.0)
    topo.add_link("n1", "n2", latency=1.0, bandwidth=10.0)
    return topo


def _model(topo, chain_flows, bandwidth=None):
    return NetworkModel.build(
        topo, VNFS, NODES, chain_flows, bandwidth=bandwidth
    )


class TestPairAggregation:
    def test_adjacent_distinct_pairs_sum(self, line_topology):
        model = _model(
            line_topology,
            [
                (["fw", "lb"], 2.0),
                (["lb", "fw"], 3.0),  # unordered: same pair as fw->lb
                (["fw", "lb", "ids"], 1.0),
            ],
        )
        pairs = {
            (VNFS[a], VNFS[b]): f
            for a, b, f in zip(
                model.pair_a, model.pair_b, model.pair_flow
            )
        }
        assert pairs == {
            ("fw", "lb"): pytest.approx(6.0),
            ("lb", "ids"): pytest.approx(1.0),
        }

    def test_self_loops_ignored(self, line_topology):
        model = _model(line_topology, [(["fw", "fw"], 5.0)])
        assert model.num_pairs == 0

    def test_unknown_vnf_rejected(self, line_topology):
        with pytest.raises(ValidationError):
            _model(line_topology, [(["fw", "ghost"], 1.0)])

    def test_unknown_node_rejected(self, line_topology):
        with pytest.raises(ValidationError):
            NetworkModel.build(
                line_topology, VNFS, ("n0", "ghost"), []
            )


class TestLinkLoads:
    def test_routed_flow_charges_every_link(self, line_topology):
        model = _model(line_topology, [(["fw", "lb"], 4.0)])
        # fw on n0, lb on n2: both links carry the flow.
        vec = model.placement_vector({"fw": "n0", "lb": "n2"})
        np.testing.assert_allclose(model.link_loads(vec), [4.0, 4.0])

    def test_colocated_pair_is_free(self, line_topology):
        model = _model(line_topology, [(["fw", "lb"], 4.0)])
        vec = model.placement_vector({"fw": "n1", "lb": "n1"})
        np.testing.assert_allclose(model.link_loads(vec), [0.0, 0.0])

    def test_unplaced_vnfs_contribute_nothing(self, line_topology):
        model = _model(line_topology, [(["fw", "lb"], 4.0)])
        vec = model.placement_vector({"fw": "n0"})
        np.testing.assert_allclose(model.link_loads(vec), [0.0, 0.0])

    def test_incremental_equals_full_rebuild(self):
        """add_flows-by-VNF reconstruction matches link_loads exactly."""
        rng = np.random.default_rng(20170605)
        topo = random_datacenter(8, rng=rng)
        names = tuple(f"f{i}" for i in range(6))
        nodes = tuple(f"node{i}" for i in range(8))
        chains = [
            (
                list(rng.choice(names, size=rng.integers(2, 5))),
                float(rng.uniform(0.5, 3.0)),
            )
            for _ in range(12)
        ]
        model = NetworkModel.build(topo, names, nodes, chains)
        targets = rng.integers(0, 8, size=len(names))

        vec = np.full(len(names), -1, dtype=np.int64)
        loads = np.zeros(model.num_links)
        for fi, target in enumerate(targets):
            model.add_flows(fi, int(target), vec, loads)
            vec[fi] = int(target)
        np.testing.assert_allclose(
            loads, model.link_loads(vec), rtol=0, atol=1e-12
        )

    def test_incremental_matches_rebuild_under_path_ties(self):
        """Uniform link latencies create shortest-path ties whose
        Dijkstra tie-break differs per direction; load accounting must
        charge one canonical route per unordered node pair so that
        add/retract from either endpoint cancel exactly (regression:
        the swap pass used to drift and oversubscribe links)."""
        rng = np.random.default_rng(20170713)
        topo = random_datacenter(24, rng=rng)  # uniform 1e-4 latencies
        names = tuple(f"f{i}" for i in range(8))
        nodes = tuple(f"node{i}" for i in range(24))
        chains = [
            (
                list(rng.choice(names, size=int(rng.integers(2, 5)))),
                float(rng.uniform(0.5, 3.0)),
            )
            for _ in range(20)
        ]
        model = NetworkModel.build(topo, names, nodes, chains)
        vec = rng.integers(0, 24, size=len(names)).astype(np.int64)
        loads = model.link_loads(vec)
        # Relocate every VNF once: retract, move, re-add.
        for fi in range(len(names)):
            node = int(vec[fi])
            vec[fi] = -1
            model.add_flows(fi, node, vec, loads, sign=-1.0)
            target = int(rng.integers(0, 24))
            model.add_flows(fi, target, vec, loads, sign=1.0)
            vec[fi] = target
        np.testing.assert_allclose(
            loads, model.link_loads(vec), rtol=0, atol=1e-9
        )

    def test_retract_cancels_exactly(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 4.0), (["lb", "ids"], 2.0)]
        )
        vec = model.placement_vector(
            {"fw": "n0", "lb": "n2", "ids": "n1"}
        )
        loads = model.link_loads(vec)
        fi = VNFS.index("lb")
        node = int(vec[fi])
        vec[fi] = -1
        model.add_flows(fi, node, vec, loads, sign=-1.0)
        model.add_flows(fi, node, vec, loads, sign=1.0)
        vec[fi] = node
        np.testing.assert_allclose(loads, model.link_loads(vec))


class TestFits:
    def test_fits_within_budget(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 9.0)], bandwidth=10.0
        )
        vec = model.placement_vector({"fw": "n0"})
        loads = model.link_loads(vec)
        assert model.fits(VNFS.index("lb"), 2, vec, loads)

    def test_rejects_oversubscription(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 11.0)], bandwidth=10.0
        )
        vec = model.placement_vector({"fw": "n0"})
        loads = model.link_loads(vec)
        lb = VNFS.index("lb")
        assert not model.fits(lb, 2, vec, loads)
        # Colocation always fits: no flow routed.
        assert model.fits(lb, 0, vec, loads)

    def test_epsilon_slack_at_exact_budget(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 10.0)], bandwidth=10.0
        )
        vec = model.placement_vector({"fw": "n0"})
        loads = model.link_loads(vec)
        assert model.fits(VNFS.index("lb"), 2, vec, loads)


class TestDiagnostics:
    def test_oversubscribed_links(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 11.0)], bandwidth=10.0
        )
        vec = model.placement_vector({"fw": "n0", "lb": "n2"})
        np.testing.assert_array_equal(
            model.oversubscribed_links(vec), [0, 1]
        )
        assert model.max_link_utilization(vec) == pytest.approx(1.1)

    def test_clean_placement_reports_nothing(self, line_topology):
        model = _model(
            line_topology, [(["fw", "lb"], 11.0)], bandwidth=10.0
        )
        vec = model.placement_vector({"fw": "n1", "lb": "n1"})
        assert len(model.oversubscribed_links(vec)) == 0
        assert model.max_link_utilization(vec) == 0.0


class TestBandwidthSpecification:
    def test_default_uses_topology_column(self, line_topology):
        model = _model(line_topology, [])
        np.testing.assert_allclose(model.bandwidth, [10.0, 10.0])

    def test_scalar_applies_uniformly(self, line_topology):
        model = _model(line_topology, [], bandwidth=3.0)
        np.testing.assert_allclose(model.bandwidth, [3.0, 3.0])

    def test_per_link_sequence(self, line_topology):
        model = _model(line_topology, [], bandwidth=[1.0, 2.0])
        np.testing.assert_allclose(model.bandwidth, [1.0, 2.0])

    def test_wrong_length_rejected(self, line_topology):
        with pytest.raises(ValidationError):
            _model(line_topology, [], bandwidth=[1.0])

    def test_nonpositive_rejected(self, line_topology):
        with pytest.raises(ValidationError):
            _model(line_topology, [], bandwidth=0.0)


class TestPlacementVector:
    def test_unknown_node_rejected(self, line_topology):
        model = _model(line_topology, [])
        with pytest.raises(ValidationError):
            model.placement_vector({"fw": "ghost"})


class TestRemoveFlows:
    def test_add_then_remove_restores_exactly(self, line_topology):
        """Bit-exact, not approximate: x + f - f == x per link."""
        model = _model(
            line_topology,
            [(["fw", "lb"], 4.0), (["lb", "ids"], 2.5), (["fw", "ids"], 1.25)],
        )
        vec = model.placement_vector({"fw": "n0", "ids": "n1"})
        loads = model.link_loads(vec)
        before = loads.copy()
        lb = VNFS.index("lb")
        model.add_flows(lb, 2, vec, loads)
        vec[lb] = 2
        vec[lb] = -1
        model.remove_flows(lb, 2, vec, loads)
        np.testing.assert_array_equal(loads, before)

    def test_roundtrip_property_random_topologies(self):
        """Seeded property sweep: for random fabrics, placements and
        flow values, add_flows followed by remove_flows at the same
        node restores every link residual bit-exactly — the canonical
        min->max routing makes the retraction replay identical float
        additions with the sign flipped, regardless of which endpoint
        of a tied shortest path the VNF sits on."""
        rng = np.random.default_rng(20170605)
        for trial in range(10):
            num_nodes = int(rng.integers(4, 16))
            topo = random_datacenter(num_nodes, rng=rng)
            names = tuple(f"f{i}" for i in range(int(rng.integers(3, 7))))
            nodes = tuple(f"node{i}" for i in range(num_nodes))
            chains = [
                (
                    list(
                        rng.choice(
                            names,
                            size=int(rng.integers(2, min(5, len(names) + 1))),
                            replace=False,
                        )
                    ),
                    # Dyadic flows: every partial sum is exactly
                    # representable, so "restores exactly" is a
                    # routing-canonicalization property, not a
                    # rounding accident.
                    float(rng.integers(1, 64)) / 8.0,
                )
                for _ in range(int(rng.integers(3, 12)))
            ]
            model = NetworkModel.build(topo, names, nodes, chains)
            vec = rng.integers(0, num_nodes, size=len(names)).astype(np.int64)
            loads = model.link_loads(vec)
            before = loads.copy()
            fi = int(rng.integers(len(names)))
            node = int(vec[fi])
            target = int(rng.integers(num_nodes))
            # Move fi away and back: each add is later retracted at the
            # same node, so the residuals must land exactly on `before`.
            vec[fi] = -1
            model.remove_flows(fi, node, vec, loads)
            model.add_flows(fi, target, vec, loads)
            vec[fi] = target
            vec[fi] = -1
            model.remove_flows(fi, target, vec, loads)
            model.add_flows(fi, node, vec, loads)
            vec[fi] = node
            np.testing.assert_array_equal(
                loads, before, err_msg=f"trial {trial}"
            )


class TestChainFlows:
    """Per-request routed flows — the admit/depart path of the engine."""

    def test_chain_link_flows_crossing_line(self, line_topology):
        model = _model(line_topology, [])
        vec = model.placement_vector({"fw": "n0", "lb": "n2", "ids": "n1"})
        chain = np.array(
            [VNFS.index("fw"), VNFS.index("lb"), VNFS.index("ids")],
            dtype=np.int64,
        )
        links, flows = model.chain_link_flows(chain, vec, 4.0)
        # fw->lb crosses both links; lb->ids crosses link 1 only.
        loads = np.zeros(model.num_links)
        np.add.at(loads, links, flows)
        np.testing.assert_allclose(loads, [4.0, 8.0])

    def test_colocated_and_unplaced_hops_are_free(self, line_topology):
        model = _model(line_topology, [])
        vec = model.placement_vector({"fw": "n1", "lb": "n1"})
        chain = np.array(
            [VNFS.index("fw"), VNFS.index("lb"), VNFS.index("ids")],
            dtype=np.int64,
        )
        links, flows = model.chain_link_flows(chain, vec, 4.0)
        assert len(links) == 0 and len(flows) == 0

    def test_chain_fits_gates_on_residuals(self, line_topology):
        model = _model(line_topology, [], bandwidth=10.0)
        vec = model.placement_vector({"fw": "n0", "lb": "n2"})
        loads = np.zeros(model.num_links)
        chain = np.array(
            [VNFS.index("fw"), VNFS.index("lb")], dtype=np.int64
        )
        assert model.chain_fits(chain, vec, loads, 9.0)
        model.add_chain_flows(chain, vec, loads, 9.0)
        assert not model.chain_fits(chain, vec, loads, 2.0)
        assert model.chain_fits(chain, vec, loads, 1.0)

    def test_add_remove_chain_flows_roundtrip_exact(self, line_topology):
        model = _model(line_topology, [])
        vec = model.placement_vector(
            {"fw": "n0", "lb": "n2", "ids": "n1", "nat": "n0"}
        )
        loads = np.zeros(model.num_links)
        chains = [
            np.array([0, 1, 2], dtype=np.int64),
            np.array([2, 3], dtype=np.int64),
            np.array([1, 0, 3], dtype=np.int64),
        ]
        rates = [4.25, 1.125, 2.5]
        for chain, rate in zip(chains, rates):
            model.add_chain_flows(chain, vec, loads, rate)
        for chain, rate in zip(reversed(chains), reversed(rates)):
            model.add_chain_flows(chain, vec, loads, rate, -1.0)
        np.testing.assert_array_equal(loads, np.zeros(model.num_links))
