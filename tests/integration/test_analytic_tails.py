"""Integration: analytic chain tails vs packet-level simulation.

The hypoexponential end-to-end latency distribution must predict the
simulator's measured percentiles — closing the loop between the tail
statistics of Section V-C and the analytic substrate.
"""

import numpy as np
import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.queueing.hypoexponential import HypoexponentialLatency
from repro.sim.simulator import ChainSimulator, SimulationConfig


@pytest.fixture(scope="module")
def chain_run():
    rate = 30.0
    mus = (90.0, 70.0, 110.0)
    vnfs = [VNF(f"v{i}", 1.0, 1, mu) for i, mu in enumerate(mus)]
    chain = ServiceChain([f.name for f in vnfs])
    request = Request("r0", chain, rate)
    schedule = {("r0", f.name): 0 for f in vnfs}
    metrics = ChainSimulator(
        vnfs,
        [request],
        schedule,
        SimulationConfig(duration=3000.0, warmup=300.0, seed=77),
    ).run()
    analytic = HypoexponentialLatency([rate] * 3, list(mus))
    return analytic, metrics


class TestAnalyticTails:
    def test_mean_agrees(self, chain_run):
        analytic, metrics = chain_run
        assert metrics.mean_end_to_end() == pytest.approx(
            analytic.mean, rel=0.08
        )

    def test_median_agrees(self, chain_run):
        analytic, metrics = chain_run
        measured = float(np.percentile(metrics.all_latencies(), 50))
        assert measured == pytest.approx(analytic.percentile(0.5), rel=0.10)

    def test_p95_agrees(self, chain_run):
        analytic, metrics = chain_run
        measured = float(np.percentile(metrics.all_latencies(), 95))
        assert measured == pytest.approx(analytic.percentile(0.95), rel=0.12)

    def test_p99_agrees(self, chain_run):
        analytic, metrics = chain_run
        measured = float(np.percentile(metrics.all_latencies(), 99))
        assert measured == pytest.approx(analytic.percentile(0.99), rel=0.20)

    def test_tail_ordering(self, chain_run):
        analytic, _ = chain_run
        assert (
            analytic.percentile(0.5)
            < analytic.percentile(0.95)
            < analytic.percentile(0.99)
        )
