"""Property-based tests over the whole joint pipeline (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joint import JointOptimizer
from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.rckk import RCKKScheduler
from repro.workload.generator import WorkloadGenerator

workload_params = st.tuples(
    st.integers(min_value=2, max_value=8),    # vnfs
    st.integers(min_value=2, max_value=6),    # nodes
    st.integers(min_value=5, max_value=25),   # requests
    st.integers(min_value=0, max_value=999),  # seed
)


def _build(vnfs, nodes, requests, seed):
    gen = WorkloadGenerator(np.random.default_rng(seed))
    return gen.workload(
        num_vnfs=vnfs,
        num_nodes=nodes,
        num_requests=requests,
        delivery_probability=0.99,
    )


@given(params=workload_params)
@settings(max_examples=25, deadline=None)
def test_joint_solution_always_structurally_valid(params):
    """Every generated workload yields a fully valid joint solution."""
    vnfs, nodes, requests, seed = params
    w = _build(vnfs, nodes, requests, seed)
    solution = JointOptimizer(
        placement=BFDSUPlacement(rng=np.random.default_rng(seed)),
        scheduler=RCKKScheduler(),
    ).optimize(w.vnfs, w.requests, w.capacities)
    solution.state.validate()  # Eqs. 1-7


@given(params=workload_params)
@settings(max_examples=25, deadline=None)
def test_every_chain_vnf_scheduled_exactly_once(params):
    """Eq. (5) holds across the whole pipeline, not just per VNF."""
    vnfs, nodes, requests, seed = params
    w = _build(vnfs, nodes, requests, seed)
    solution = JointOptimizer(placement=BFDPlacement()).optimize(
        w.vnfs, w.requests, w.capacities
    )
    for request in w.requests:
        scheduled = [
            vnf_name
            for (rid, vnf_name) in solution.schedule
            if rid == request.request_id
        ]
        assert sorted(scheduled) == sorted(request.chain.vnf_names)


@given(params=workload_params)
@settings(max_examples=25, deadline=None)
def test_evaluation_metrics_well_formed(params):
    """Evaluation never yields out-of-range metrics on feasible inputs."""
    vnfs, nodes, requests, seed = params
    w = _build(vnfs, nodes, requests, seed)
    solution = JointOptimizer(placement=BFDPlacement()).optimize(
        w.vnfs, w.requests, w.capacities
    )
    report = solution.evaluate()
    assert 0.0 < report.average_node_utilization <= 1.0 + 1e-9
    assert 1 <= report.nodes_in_service <= nodes
    assert 0.0 <= report.rejection_rate <= 1.0
    assert report.resource_occupation <= sum(w.capacities.values()) + 1e-9


@given(params=workload_params)
@settings(max_examples=15, deadline=None)
def test_total_latency_monotone_in_link_cost(params):
    """Eq. (16) is non-decreasing in L for a fixed solution."""
    vnfs, nodes, requests, seed = params
    w = _build(vnfs, nodes, requests, seed)
    solution = JointOptimizer(placement=BFDPlacement()).optimize(
        w.vnfs, w.requests, w.capacities
    )
    from repro.core.objectives import total_latency

    cheap = total_latency(solution.state, link_latency=0.0)
    costly = total_latency(solution.state, link_latency=1e-2)
    assert costly >= cheap
