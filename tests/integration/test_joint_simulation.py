"""Integration: a jointly optimized deployment, simulated packet by packet.

The strongest end-to-end check in the suite: generate a workload, run
the paper's full two-phase pipeline, then feed the *same* schedule into
the discrete-event simulator and require the measured per-instance
behaviour to match the analytic model the optimizer reasoned with.
"""

import numpy as np
import pytest

from repro.core.joint import JointOptimizer
from repro.placement.bfdsu import BFDSUPlacement
from repro.scheduling.rckk import RCKKScheduler
from repro.sim.simulator import ChainSimulator, SimulationConfig
from repro.workload.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def optimized_and_simulated():
    gen = WorkloadGenerator(np.random.default_rng(2024))
    vnfs = gen.vnfs(4, instance_range=(1, 2))
    chains = gen.chains(vnfs, 2, max_length=3)
    requests = gen.requests(
        chains, 10, rate_range=(5.0, 40.0), delivery_probability=0.99
    )
    # Scale service rates so the busiest instance sits near rho ~ 0.5:
    # fast enough to simulate long runs, loaded enough to queue.
    total = sum(r.effective_rate for r in requests)
    vnfs = [f.with_service_rate(total) for f in vnfs]
    capacities = gen.capacities_fitting(3, vnfs, headroom=1.5)

    solution = JointOptimizer(
        placement=BFDSUPlacement(rng=np.random.default_rng(7)),
        scheduler=RCKKScheduler(),
    ).optimize(vnfs, requests, capacities)
    solution.state.validate()

    simulator = ChainSimulator(
        vnfs,
        requests,
        solution.schedule,
        SimulationConfig(duration=800.0, warmup=80.0, seed=99),
    )
    return solution, simulator.run()


class TestJointSimulation:
    def test_all_requests_served(self, optimized_and_simulated):
        _, metrics = optimized_and_simulated
        for request_id, delivered in metrics.delivered.items():
            assert delivered > 0, f"request {request_id} starved"

    def test_instance_utilizations_match_model(self, optimized_and_simulated):
        solution, metrics = optimized_and_simulated
        for instance in solution.state.instances():
            if not instance.requests:
                continue
            measured = metrics.instance(*instance.key).utilization
            assert measured == pytest.approx(
                instance.utilization, abs=0.05
            ), f"instance {instance.key} utilization mismatch"

    def test_instance_sojourns_match_model(self, optimized_and_simulated):
        solution, metrics = optimized_and_simulated
        for instance in solution.state.instances():
            if not instance.requests:
                continue
            # Per-pass sojourn: 1 / (mu - Lambda).
            expected = 1.0 / (
                instance.vnf.service_rate
                - instance.equivalent_arrival_rate
            )
            measured = metrics.instance(*instance.key).mean_sojourn
            assert measured == pytest.approx(expected, rel=0.25), (
                f"instance {instance.key} sojourn mismatch"
            )

    def test_idle_instances_see_no_traffic(self, optimized_and_simulated):
        solution, metrics = optimized_and_simulated
        for instance in solution.state.instances():
            if instance.requests:
                continue
            assert metrics.instance(*instance.key).arrivals == 0
