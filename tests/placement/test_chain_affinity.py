"""Unit tests for the chain-affinity BFDSU extension."""

import numpy as np
import pytest

from repro.nfv.chain import ServiceChain
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.chain_affinity import ChainAffinityBFDSU, _chain_neighbours


def _problem(demands, capacities, chains=()):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    caps = {f"n{i}": c for i, c in enumerate(capacities)}
    return PlacementProblem(vnfs=vnfs, capacities=caps, chains=chains)


class TestNeighbourMap:
    def test_bidirectional(self):
        p = _problem(
            [1.0, 1.0, 1.0],
            [10.0],
            chains=[ServiceChain(["f0", "f1", "f2"])],
        )
        n = _chain_neighbours(p)
        assert n["f0"] == {"f1"}
        assert n["f1"] == {"f0", "f2"}
        assert n["f2"] == {"f1"}

    def test_no_chains(self):
        assert _chain_neighbours(_problem([1.0], [10.0])) == {}


class TestPlacement:
    def test_valid_and_complete(self):
        p = _problem(
            [4.0, 3.0, 2.0],
            [10.0, 10.0],
            chains=[ServiceChain(["f0", "f1", "f2"])],
        )
        result = ChainAffinityBFDSU(rng=np.random.default_rng(0)).place(p)
        result.validate()

    def test_boost_one_is_plain_bfdsu(self):
        demands = [4.0, 3.0, 2.0, 5.0]
        caps = [10.0, 10.0, 10.0]
        p1 = _problem(demands, caps)
        p2 = _problem(demands, caps)
        affinity = ChainAffinityBFDSU(
            rng=np.random.default_rng(11), affinity_boost=1.0
        ).place(p1)
        plain = BFDSUPlacement(rng=np.random.default_rng(11)).place(p2)
        assert affinity.placement == plain.placement

    def test_high_boost_colocates_chain(self):
        # Two equal nodes, chain of three small VNFs: with a huge boost
        # they land together essentially always.
        chains = [ServiceChain(["f0", "f1", "f2"])]
        colocated = 0
        for seed in range(20):
            p = _problem([2.0, 2.0, 2.0], [10.0, 10.0], chains=chains)
            result = ChainAffinityBFDSU(
                rng=np.random.default_rng(seed), affinity_boost=50.0
            ).place(p)
            nodes = {result.placement[f] for f in ("f0", "f1", "f2")}
            if len(nodes) == 1:
                colocated += 1
        assert colocated >= 18

    def test_reduces_hops_vs_plain_on_average(self):

        chains = [
            ServiceChain(["f0", "f1"]),
            ServiceChain(["f2", "f3"]),
        ]
        hops = {"affinity": 0, "plain": 0}
        for seed in range(30):
            demands = [3.0, 3.0, 3.0, 3.0]
            caps = [7.0, 7.0, 7.0, 7.0]
            for key, algo in (
                (
                    "affinity",
                    ChainAffinityBFDSU(
                        rng=np.random.default_rng(seed), affinity_boost=8.0
                    ),
                ),
                ("plain", BFDSUPlacement(rng=np.random.default_rng(seed))),
            ):
                p = _problem(demands, caps, chains=chains)
                result = algo.place(p)
                # Count chain hops that cross nodes.
                for chain in chains:
                    for a, b in chain.hops():
                        if result.placement[a] != result.placement[b]:
                            hops[key] += 1
        assert hops["affinity"] <= hops["plain"]

    def test_bad_boost(self):
        with pytest.raises(ValueError):
            ChainAffinityBFDSU(affinity_boost=0.5)
