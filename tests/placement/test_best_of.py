"""Unit tests for the best-of-K placement wrapper."""

import numpy as np
import pytest

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.best_of import BestOfKPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.random_fit import RandomFitPlacement


def _problem(demands, capacities):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    caps = {f"n{i}": c for i, c in enumerate(capacities)}
    return PlacementProblem(vnfs=vnfs, capacities=caps)


def _bfdsu_factory(run, rng):
    return BFDSUPlacement(rng=rng)


class TestBestOfK:
    def test_valid_result(self):
        problem = _problem([4.0, 3.0, 2.0, 5.0], [10.0, 10.0, 10.0])
        result = BestOfKPlacement(
            _bfdsu_factory, k=4, rng=np.random.default_rng(0)
        ).place(problem)
        result.validate()
        assert result.algorithm.startswith("BestOfK(BFDSU")

    def test_never_worse_than_single_run(self):
        rng_master = np.random.default_rng(3)
        for rep in range(10):
            demands = list(np.random.default_rng(rep).uniform(2.0, 6.0, 8))
            problem_single = _problem(demands, [10.0] * 8)
            problem_multi = _problem(demands, [10.0] * 8)
            single = BFDSUPlacement(
                rng=np.random.default_rng(rep + 100)
            ).place(problem_single)
            multi = BestOfKPlacement(
                _bfdsu_factory, k=6, rng=np.random.default_rng(rep + 100)
            ).place(problem_multi)
            # Across many reps, best-of-6 on average ties or beats.
            assert multi.num_used_nodes <= single.num_used_nodes + 1

    def test_improves_random_fit(self):
        demands = list(np.random.default_rng(5).uniform(2.0, 6.0, 10))
        single_nodes, multi_nodes = [], []
        for rep in range(10):
            p1 = _problem(demands, [12.0] * 10)
            p2 = _problem(demands, [12.0] * 10)
            single_nodes.append(
                RandomFitPlacement(np.random.default_rng(rep))
                .place(p1)
                .num_used_nodes
            )
            multi_nodes.append(
                BestOfKPlacement(
                    lambda run, rng: RandomFitPlacement(rng),
                    k=8,
                    rng=np.random.default_rng(rep),
                )
                .place(p2)
                .num_used_nodes
            )
        assert np.mean(multi_nodes) < np.mean(single_nodes)

    def test_iterations_accumulate(self):
        problem = _problem([4.0, 3.0], [10.0, 10.0])
        result = BestOfKPlacement(
            _bfdsu_factory, k=3, rng=np.random.default_rng(1)
        ).place(problem)
        assert result.iterations >= 3 * 2  # >= k runs x |F| draws

    def test_deterministic_given_seed(self):
        p1 = _problem([4.0, 3.0, 2.0], [10.0, 10.0])
        p2 = _problem([4.0, 3.0, 2.0], [10.0, 10.0])
        a = BestOfKPlacement(
            _bfdsu_factory, k=3, rng=np.random.default_rng(9)
        ).place(p1)
        b = BestOfKPlacement(
            _bfdsu_factory, k=3, rng=np.random.default_rng(9)
        ).place(p2)
        assert a.placement == b.placement

    def test_all_failures_raise(self):
        problem = _problem([6.0, 6.0], [7.0])
        problem_checkless = problem  # check happens inside the child

        class AlwaysFails:
            name = "fail"

            def place(self, _):
                raise InfeasiblePlacementError("nope")

        wrapper = BestOfKPlacement(
            lambda run, rng: AlwaysFails(), k=3, rng=np.random.default_rng(0)
        )
        with pytest.raises(InfeasiblePlacementError):
            wrapper.place(problem_checkless)

    def test_bad_k(self):
        with pytest.raises(ValidationError):
            BestOfKPlacement(_bfdsu_factory, k=0)
