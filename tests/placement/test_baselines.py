"""Unit tests for the FFD, NAH, BFD and random-fit baselines."""

import numpy as np
import pytest

from repro.exceptions import InfeasiblePlacementError
from repro.nfv.chain import ServiceChain
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfd import BFDPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement
from repro.placement.random_fit import RandomFitPlacement


def _problem(demands, capacities, chains=()):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    caps = {f"n{i}": c for i, c in enumerate(capacities)}
    return PlacementProblem(vnfs=vnfs, capacities=caps, chains=chains)


class TestFFD:
    def test_picks_largest_residual(self):
        problem = _problem([3.0], [5.0, 9.0, 7.0])
        result = FFDPlacement().place(problem)
        assert result.node_of("f0") == "n1"

    def test_single_iteration(self):
        problem = _problem([3.0, 2.0], [9.0, 9.0])
        assert FFDPlacement().place(problem).iterations == 1

    def test_spreads_load(self):
        # Worst-fit style: equal nodes get one item each.
        problem = _problem([2.0, 2.0, 2.0], [10.0, 10.0, 10.0])
        result = FFDPlacement().place(problem)
        assert result.num_used_nodes == 3

    def test_infeasible_raises(self):
        problem = _problem([6.0, 6.0], [7.0, 4.0])
        with pytest.raises(InfeasiblePlacementError):
            FFDPlacement().place(problem)

    def test_demand_sorted(self):
        # The largest VNF lands on the largest node first.
        problem = _problem([2.0, 8.0], [9.0, 5.0])
        result = FFDPlacement().place(problem)
        assert result.node_of("f1") == "n0"


class TestNAH:
    def test_chain_anchored_at_largest_node(self):
        chains = [ServiceChain(["f0", "f1"])]
        problem = _problem([4.0, 2.0], [10.0, 20.0], chains=chains)
        result = NAHPlacement().place(problem)
        # Heaviest VNF of the chain at the biggest node; the rest co-locate.
        assert result.node_of("f0") == "n1"
        assert result.node_of("f1") == "n1"

    def test_overflow_falls_back(self):
        chains = [ServiceChain(["f0", "f1", "f2"])]
        problem = _problem([6.0, 5.0, 4.0], [12.0, 9.0], chains=chains)
        result = NAHPlacement().place(problem)
        result.validate()
        # f0+f1 fill n0 (11/12); f2 must fall back to n1.
        assert result.node_of("f2") == "n1"

    def test_vnfs_without_chains_treated_singleton(self):
        problem = _problem([4.0, 3.0], [10.0, 10.0])
        result = NAHPlacement().place(problem)
        result.validate()

    def test_iterations_counted(self):
        chains = [ServiceChain(["f0", "f1", "f2"])]
        problem = _problem([4.0, 3.0, 2.0], [20.0, 20.0], chains=chains)
        result = NAHPlacement().place(problem)
        # 1 anchor + 2 same-node placements.
        assert result.iterations == 3

    def test_infeasible_raises(self):
        problem = _problem([6.0, 6.0], [7.0, 5.0])
        with pytest.raises(InfeasiblePlacementError):
            NAHPlacement().place(problem)

    def test_chains_processed_heaviest_first(self):
        chains = [
            ServiceChain(["f0"]),  # light
            ServiceChain(["f1"]),  # heavy
        ]
        problem = _problem([2.0, 9.0], [10.0, 6.0], chains=chains)
        result = NAHPlacement().place(problem)
        # The heavy anchor gets the big node even though its chain is
        # listed second.
        assert result.node_of("f1") == "n0"


class TestBFD:
    def test_tightest_node_chosen(self):
        problem = _problem([3.0], [9.0, 4.0, 6.0])
        result = BFDPlacement().place(problem)
        assert result.node_of("f0") == "n1"

    def test_used_list_priority(self):
        # After f0 opens n1 (tightest fit), f1 joins it rather than the
        # tighter-but-spare n2 when used-first is on.
        problem = _problem([3.0, 1.0], [9.0, 5.0, 1.0])
        with_used = BFDPlacement(use_used_list=True).place(problem)
        assert with_used.node_of("f1") == with_used.node_of("f0")

    def test_without_used_list(self):
        problem = _problem([3.0, 1.0], [9.0, 5.0, 1.0])
        result = BFDPlacement(use_used_list=False).place(problem)
        # Pure best fit: f1 (size 1) takes the capacity-1 node.
        assert result.node_of("f1") == "n2"

    def test_infeasible_raises(self):
        problem = _problem([6.0, 6.0], [7.0, 4.0])
        with pytest.raises(InfeasiblePlacementError):
            BFDPlacement().place(problem)

    def test_valid_on_tight_instance(self):
        problem = _problem([5.0, 4.0, 3.0, 3.0, 3.0], [9.0, 9.0])
        result = BFDPlacement().place(problem)
        result.validate()
        assert result.num_used_nodes == 2


class TestRandomFit:
    def test_valid_placement(self):
        problem = _problem([3.0, 2.0, 4.0], [10.0, 10.0])
        result = RandomFitPlacement(np.random.default_rng(0)).place(problem)
        result.validate()

    def test_deterministic_given_seed(self):
        p1 = _problem([3.0, 2.0, 4.0], [10.0, 10.0])
        p2 = _problem([3.0, 2.0, 4.0], [10.0, 10.0])
        a = RandomFitPlacement(np.random.default_rng(9)).place(p1)
        b = RandomFitPlacement(np.random.default_rng(9)).place(p2)
        assert a.placement == b.placement

    def test_infeasible_raises(self):
        problem = _problem([6.0, 6.0], [7.0])
        with pytest.raises(InfeasiblePlacementError):
            RandomFitPlacement(np.random.default_rng(1)).place(problem)
