"""Unit tests for the exact branch-and-bound placement + Theorem 2 check."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.exact import ExactPlacement


def _problem(demands, capacities):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    caps = {f"n{i}": c for i, c in enumerate(capacities)}
    return PlacementProblem(vnfs=vnfs, capacities=caps)


class TestExact:
    def test_trivial(self):
        result = ExactPlacement().place(_problem([3.0], [5.0]))
        assert result.num_used_nodes == 1

    def test_finds_perfect_pack(self):
        # 6 items of 3 into capacity-9 nodes: optimal is 2 nodes.
        result = ExactPlacement().place(_problem([3.0] * 6, [9.0] * 6))
        assert result.num_used_nodes == 2

    def test_heterogeneous_optimal(self):
        # One big node can take everything.
        result = ExactPlacement().place(
            _problem([4.0, 3.0, 2.0], [5.0, 5.0, 9.0])
        )
        assert result.num_used_nodes == 1

    def test_forced_split(self):
        result = ExactPlacement().place(_problem([5.0, 5.0], [6.0, 6.0]))
        assert result.num_used_nodes == 2

    def test_size_guard(self):
        with pytest.raises(ValidationError):
            ExactPlacement().place(_problem([1.0] * 17, [100.0] * 20))

    def test_matches_brute_force_small(self):
        # Cross-check against per-instance enumeration via itertools.
        from itertools import product

        demands = [4.0, 3.0, 3.0, 2.0]
        caps = [6.0, 6.0, 6.0]
        best = None
        for assign in product(range(3), repeat=4):
            loads = [0.0, 0.0, 0.0]
            for d, a in zip(demands, assign):
                loads[a] += d
            if all(load <= c for load, c in zip(loads, caps)):
                used = sum(1 for load in loads if load > 0)
                best = used if best is None else min(best, used)
        result = ExactPlacement().place(_problem(demands, caps))
        assert result.num_used_nodes == best


class TestTheorem2Bound:
    """Empirical check of BFDSU's asymptotic worst-case bound of 2."""

    @pytest.mark.parametrize("seed", range(6))
    def test_bfdsu_within_twice_optimal(self, seed):
        rng = np.random.default_rng(seed)
        demands = list(rng.uniform(1.0, 6.0, size=9))
        caps = [10.0] * 9
        exact = ExactPlacement().place(_problem(demands, caps))
        bfdsu = BFDSUPlacement(rng=np.random.default_rng(seed + 100)).place(
            _problem(demands, caps)
        )
        # Theorem 2: SUM(V) <= 2 OPT(V) (asymptotically; +1 slack for
        # small instances).
        assert bfdsu.num_used_nodes <= 2 * exact.num_used_nodes + 1
