"""Unit tests for multi-resource placement."""

import numpy as np
import pytest

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.placement.multi_resource import (
    MultiResourceProblem,
    MultiResourceResult,
    ResourceVector,
    VectorBFDSU,
)


def _vec(cpu, mem):
    return ResourceVector(cpu=cpu, memory=mem)


class TestResourceVector:
    def test_get(self):
        v = _vec(4.0, 8.0)
        assert v.get("cpu") == 4.0
        assert v.get("memory") == 8.0
        with pytest.raises(ValidationError):
            v.get("disk")

    def test_fits_within(self):
        assert _vec(2.0, 3.0).fits_within(_vec(4.0, 3.0))
        assert not _vec(5.0, 1.0).fits_within(_vec(4.0, 3.0))

    def test_arithmetic(self):
        s = _vec(4.0, 8.0).minus(_vec(1.0, 2.0))
        assert s.get("cpu") == pytest.approx(3.0)
        t = s.plus(_vec(1.0, 2.0))
        assert t.get("memory") == pytest.approx(8.0)

    def test_dominant_share(self):
        # cpu 2/4 = 0.5, mem 6/8 = 0.75 -> dominant 0.75.
        assert _vec(2.0, 6.0).dominant_share(_vec(4.0, 8.0)) == pytest.approx(0.75)

    def test_incompatible_names(self):
        with pytest.raises(ValidationError):
            _vec(1.0, 1.0).fits_within(ResourceVector(cpu=1.0, disk=1.0))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ResourceVector(cpu=-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ResourceVector()


class TestProblem:
    def test_valid(self):
        MultiResourceProblem(
            demands={"fw": _vec(2.0, 4.0)},
            capacities={"n0": _vec(8.0, 16.0)},
        )

    def test_mixed_names_rejected(self):
        with pytest.raises(ValidationError):
            MultiResourceProblem(
                demands={"fw": ResourceVector(cpu=1.0)},
                capacities={"n0": _vec(8.0, 16.0)},
            )

    def test_feasibility_per_resource(self):
        # Fits on CPU everywhere, but memory demand exceeds every node.
        p = MultiResourceProblem(
            demands={"fw": _vec(1.0, 20.0)},
            capacities={"n0": _vec(8.0, 16.0), "n1": _vec(8.0, 16.0)},
        )
        with pytest.raises(InfeasiblePlacementError):
            p.check_necessary_feasibility()

    def test_volume_feasibility(self):
        p = MultiResourceProblem(
            demands={"a": _vec(6.0, 1.0), "b": _vec(6.0, 1.0)},
            capacities={"n0": _vec(8.0, 16.0)},
        )
        with pytest.raises(InfeasiblePlacementError):
            p.check_necessary_feasibility()


class TestVectorBFDSU:
    def _problem(self):
        return MultiResourceProblem(
            demands={
                "fw": _vec(4.0, 2.0),
                "ids": _vec(3.0, 6.0),
                "nat": _vec(1.0, 1.0),
                "lb": _vec(2.0, 2.0),
            },
            capacities={
                "n0": _vec(8.0, 8.0),
                "n1": _vec(6.0, 10.0),
                "n2": _vec(4.0, 4.0),
            },
        )

    def test_places_all_within_capacity(self):
        result = VectorBFDSU(rng=np.random.default_rng(0)).place(self._problem())
        result.validate()

    def test_consolidates(self):
        # Everything fits in n0 + n1 comfortably; should not use 3 nodes
        # in most runs.
        counts = []
        for seed in range(10):
            result = VectorBFDSU(rng=np.random.default_rng(seed)).place(
                self._problem()
            )
            counts.append(result.num_used_nodes)
        assert min(counts) <= 2

    def test_secondary_resource_respected(self):
        # CPU alone would fit both on n0; memory forces a split.
        p = MultiResourceProblem(
            demands={"a": _vec(2.0, 7.0), "b": _vec(2.0, 7.0)},
            capacities={"n0": _vec(8.0, 8.0), "n1": _vec(8.0, 8.0)},
        )
        result = VectorBFDSU(rng=np.random.default_rng(1)).place(p)
        result.validate()
        assert result.num_used_nodes == 2

    def test_dominant_utilization_metric(self):
        result = VectorBFDSU(rng=np.random.default_rng(2)).place(self._problem())
        util = result.average_dominant_utilization()
        assert 0.0 < util <= 1.0 + 1e-9

    def test_deterministic_given_seed(self):
        a = VectorBFDSU(rng=np.random.default_rng(5)).place(self._problem())
        b = VectorBFDSU(rng=np.random.default_rng(5)).place(self._problem())
        assert a.placement == b.placement

    def test_validate_catches_overflow(self):
        p = self._problem()
        result = MultiResourceResult(
            placement={name: "n2" for name in p.demands}, problem=p
        )
        with pytest.raises(ValidationError):
            result.validate()
