"""Unit tests for placement metrics and report aggregation."""

import pytest

from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem, PlacementResult
from repro.placement.metrics import (
    PlacementReport,
    enhancement_ratio,
    mean_reports,
    placement_report,
)


def _result():
    vnfs = [VNF("a", 4.0, 1, 1.0), VNF("b", 6.0, 1, 1.0)]
    problem = PlacementProblem(
        vnfs=vnfs, capacities={"n0": 10.0, "n1": 10.0}
    )
    return PlacementResult(
        placement={"a": "n0", "b": "n0"},
        problem=problem,
        iterations=3,
        algorithm="X",
    )


class TestReport:
    def test_fields(self):
        report = placement_report(_result())
        assert report.algorithm == "X"
        assert report.average_utilization == pytest.approx(1.0)
        assert report.nodes_in_service == 1
        assert report.resource_occupation == pytest.approx(10.0)
        assert report.iterations == 3

    def test_as_dict(self):
        d = placement_report(_result()).as_dict()
        assert set(d) == {
            "algorithm",
            "average_utilization",
            "nodes_in_service",
            "resource_occupation",
            "iterations",
        }


class TestMeanReports:
    def test_averages(self):
        r1 = PlacementReport("X", 0.8, 4, 100.0, 10)
        r2 = PlacementReport("X", 0.6, 6, 200.0, 20)
        mean = mean_reports([r1, r2])
        assert mean.average_utilization == pytest.approx(0.7)
        assert mean.nodes_in_service == pytest.approx(5.0)
        assert mean.resource_occupation == pytest.approx(150.0)
        assert mean.iterations == pytest.approx(15.0)

    def test_fractional_nodes_preserved(self):
        r1 = PlacementReport("X", 0.8, 8, 1.0, 1)
        r2 = PlacementReport("X", 0.8, 9, 1.0, 1)
        assert mean_reports([r1, r2]).nodes_in_service == pytest.approx(8.5)

    def test_mixed_algorithms_rejected(self):
        r1 = PlacementReport("X", 0.8, 4, 1.0, 1)
        r2 = PlacementReport("Y", 0.8, 4, 1.0, 1)
        with pytest.raises(ValueError):
            mean_reports([r1, r2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_reports([])


class TestEnhancementRatio:
    def test_improvement(self):
        assert enhancement_ratio(10.0, 8.0) == pytest.approx(0.2)

    def test_regression_negative(self):
        assert enhancement_ratio(8.0, 10.0) == pytest.approx(-0.25)

    def test_zero_baseline(self):
        assert enhancement_ratio(0.0, 5.0) == 0.0
