"""Property-based tests for resource vectors and vector placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement.multi_resource import (
    MultiResourceProblem,
    ResourceVector,
    VectorBFDSU,
)

quantity = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(a_cpu=quantity, a_mem=quantity, b_cpu=quantity, b_mem=quantity)
@settings(max_examples=50, deadline=None)
def test_vector_plus_minus_roundtrip(a_cpu, a_mem, b_cpu, b_mem):
    a = ResourceVector(cpu=a_cpu, memory=a_mem)
    b = ResourceVector(cpu=b_cpu, memory=b_mem)
    s = a.plus(b)
    assert s.get("cpu") == pytest.approx(a_cpu + b_cpu)
    back = s.minus(b)
    assert back.get("cpu") == pytest.approx(a_cpu, abs=1e-9)
    assert back.get("memory") == pytest.approx(a_mem, abs=1e-9)


@given(cpu=quantity, mem=quantity)
@settings(max_examples=50, deadline=None)
def test_dominant_share_bounds(cpu, mem):
    demand = ResourceVector(cpu=cpu, memory=mem)
    capacity = ResourceVector(cpu=200.0, memory=200.0)
    share = demand.dominant_share(capacity)
    assert 0.0 <= share <= 0.5 + 1e-12
    assert share == pytest.approx(max(cpu, mem) / 200.0)


demands_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
)


@given(demands=demands_strategy, seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_vector_bfdsu_always_feasible_on_generous_pools(demands, seed):
    problem = MultiResourceProblem(
        demands={
            f"f{i}": ResourceVector(cpu=c, memory=m)
            for i, (c, m) in enumerate(demands)
        },
        capacities={
            f"n{i}": ResourceVector(cpu=5.0, memory=5.0)
            for i in range(len(demands))
        },
    )
    result = VectorBFDSU(rng=np.random.default_rng(seed)).place(problem)
    result.validate()
    # Every used node respects every resource dimension.
    for node, load in result.node_loads().items():
        assert load.fits_within(problem.capacities[node])
