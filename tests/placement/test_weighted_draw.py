"""Statistical and edge-case tests for the BFDSU weighted draw.

Satellite of the solver-kernel PR: the ``cumsum``/``searchsorted`` draw
must (a) realize the ``placement_weights`` distribution — checked with a
chi-square goodness-of-fit test over many seeds — and (b) return the
*last* candidate on the floating-point edge ``xi == prob_sum``, exactly
like the legacy loop's fall-through.
"""

from __future__ import annotations

import numpy as np

from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import (
    BFDSUPlacement,
    placement_weights,
    weighted_draw_index,
)

#: Critical value of the chi-square distribution, df=3, alpha=0.001.
CHI2_CRIT_DF3_P999 = 16.266


class TestDrawDistribution:
    def test_frequencies_match_placement_weights(self):
        """Empirical draw frequencies ~ P_rst over many seeded streams."""
        residuals = np.array([5.0, 6.0, 8.0, 10.0])
        demand = 5.0
        weights = placement_weights(list(residuals), demand)
        probs = np.asarray(weights) / sum(weights)

        draws_per_seed = 2000
        counts = np.zeros(len(residuals), dtype=np.int64)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            for _ in range(draws_per_seed):
                counts[weighted_draw_index(residuals, demand, rng)] += 1

        total = counts.sum()
        assert total == 10 * draws_per_seed
        expected = probs * total
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < CHI2_CRIT_DF3_P999, (
            f"chi-square {chi2:.2f} exceeds the df=3 p=0.999 critical "
            f"value; counts={counts.tolist()}, expected={expected.tolist()}"
        )

    def test_tightest_candidate_most_frequent(self):
        residuals = np.array([3.0, 30.0])
        rng = np.random.default_rng(123)
        counts = [0, 0]
        for _ in range(500):
            counts[weighted_draw_index(residuals, 3.0, rng)] += 1
        assert counts[0] > counts[1]


class _EdgeRng:
    """Stub rng whose uniform(lo, hi) always lands on the upper bound."""

    def uniform(self, low, high):
        return high


class TestUpperBoundEdge:
    def test_xi_equal_prob_sum_returns_last(self):
        residuals = np.array([5.0, 6.0, 8.0, 10.0])
        pos = weighted_draw_index(residuals, 5.0, _EdgeRng())
        assert pos == len(residuals) - 1

    def test_single_candidate(self):
        assert weighted_draw_index(np.array([7.0]), 7.0, _EdgeRng()) == 0

    def test_construction_with_edge_rng_takes_loosest_candidate(self):
        """End-to-end: xi == prob_sum on every draw picks the last
        (largest-residual) candidate in both the scalar used-node path
        and the vectorized spare path."""
        vnfs = [VNF("f0", 4.0, 1, 100.0), VNF("f1", 3.0, 1, 100.0)]
        problem = PlacementProblem(
            vnfs=vnfs, capacities={"n0": 10.0, "n1": 9.0}
        )
        alg = BFDSUPlacement(rng=np.random.default_rng(0))
        alg._rng = _EdgeRng()
        result = alg.place(problem)
        # First draw (spare path): candidates sorted ascending by
        # residual are [n1: 9, n0: 10]; the edge picks n0.  Second draw
        # (used path): n0 still fits, the single candidate wins.
        assert result.placement == {"f0": "n0", "f1": "n0"}
        assert result.iterations == 2
