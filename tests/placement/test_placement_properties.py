"""Property-based tests for the placement algorithms (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfd import BFDPlacement
from repro.placement.bfdsu import BFDSUPlacement
from repro.placement.ffd import FFDPlacement
from repro.placement.nah import NAHPlacement

demands_strategy = st.lists(
    st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=15,
)


def _problem(demands):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    # Generous pool: one capacity-6 node per VNF guarantees feasibility.
    caps = {f"n{i}": 6.0 for i in range(len(demands))}
    return PlacementProblem(vnfs=vnfs, capacities=caps)


@given(demands=demands_strategy)
@settings(max_examples=40, deadline=None)
def test_ffd_places_everything_within_capacity(demands):
    result = FFDPlacement().place(_problem(demands))
    result.validate()


@given(demands=demands_strategy)
@settings(max_examples=40, deadline=None)
def test_nah_places_everything_within_capacity(demands):
    result = NAHPlacement().place(_problem(demands))
    result.validate()


@given(demands=demands_strategy)
@settings(max_examples=40, deadline=None)
def test_bfd_places_everything_within_capacity(demands):
    result = BFDPlacement().place(_problem(demands))
    result.validate()


@given(demands=demands_strategy, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=40, deadline=None)
def test_bfdsu_places_everything_within_capacity(demands, seed):
    result = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
        _problem(demands)
    )
    result.validate()


@given(demands=demands_strategy, seed=st.integers(min_value=0, max_value=99))
@settings(max_examples=40, deadline=None)
def test_bfdsu_volume_bound(demands, seed):
    """Used-node capacity always covers the demand placed on it."""
    result = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
        _problem(demands)
    )
    assert result.total_occupied_capacity >= sum(demands) - 1e-9


@given(demands=demands_strategy)
@settings(max_examples=40, deadline=None)
def test_consolidating_algorithms_use_fewer_nodes_than_spreading(demands):
    """BFD (best fit) never uses more nodes than FFD (largest-residual)."""
    bfd = BFDPlacement().place(_problem(demands))
    ffd = FFDPlacement().place(_problem(demands))
    assert bfd.num_used_nodes <= ffd.num_used_nodes


@given(demands=demands_strategy)
@settings(max_examples=40, deadline=None)
def test_utilization_in_unit_interval(demands):
    for algo in (FFDPlacement(), NAHPlacement(), BFDPlacement()):
        result = algo.place(_problem(demands))
        assert 0.0 < result.average_utilization <= 1.0 + 1e-9
