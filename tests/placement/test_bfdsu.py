"""Unit tests for the BFDSU placement algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.exceptions import MaxRestartsExceededError
from repro.nfv.vnf import VNF
from repro.placement.base import PlacementProblem
from repro.placement.bfdsu import BFDSUPlacement, placement_weights


def _problem(demands, capacities):
    vnfs = [VNF(f"f{i}", d, 1, 100.0) for i, d in enumerate(demands)]
    caps = {f"n{i}": c for i, c in enumerate(capacities)}
    return PlacementProblem(vnfs=vnfs, capacities=caps)


class TestWeights:
    def test_formula(self):
        # P_rst(v) = 1 / (1 + RST(v) - demand).
        weights = placement_weights([5.0, 8.0], demand=5.0)
        assert weights == [pytest.approx(1.0), pytest.approx(0.25)]

    def test_tightest_gets_largest_weight(self):
        weights = placement_weights([3.0, 5.0, 10.0], demand=3.0)
        assert weights[0] > weights[1] > weights[2]

    def test_exact_fit_weight_is_one(self):
        assert placement_weights([4.0], 4.0) == [pytest.approx(1.0)]


class TestPlacement:
    def test_feasible_and_valid(self):
        problem = _problem([6.0, 5.0, 4.0, 3.0], [10.0, 10.0])
        result = BFDSUPlacement(rng=np.random.default_rng(0)).place(problem)
        result.validate()
        assert result.algorithm == "BFDSU"

    def test_prefers_used_nodes(self):
        # Plenty of nodes; consolidation should not use them all.
        problem = _problem([2.0] * 6, [20.0] * 6)
        result = BFDSUPlacement(rng=np.random.default_rng(1)).place(problem)
        assert result.num_used_nodes == 1

    def test_single_vnf(self):
        problem = _problem([5.0], [10.0, 10.0])
        result = BFDSUPlacement(rng=np.random.default_rng(2)).place(problem)
        assert result.num_used_nodes == 1

    def test_exact_fit_instance(self):
        problem = _problem([5.0, 5.0], [5.0, 5.0])
        result = BFDSUPlacement(rng=np.random.default_rng(3)).place(problem)
        result.validate()
        assert result.num_used_nodes == 2

    def test_deterministic_given_seed(self):
        problem_a = _problem([6.0, 5.0, 4.0], [10.0, 10.0])
        problem_b = _problem([6.0, 5.0, 4.0], [10.0, 10.0])
        a = BFDSUPlacement(rng=np.random.default_rng(7)).place(problem_a)
        b = BFDSUPlacement(rng=np.random.default_rng(7)).place(problem_b)
        assert a.placement == b.placement

    def test_iterations_at_least_num_vnfs(self):
        problem = _problem([3.0, 2.0, 1.0], [10.0])
        result = BFDSUPlacement(rng=np.random.default_rng(4)).place(problem)
        assert result.iterations >= 3

    def test_infeasible_detected_fast(self):
        problem = _problem([6.0, 6.0], [7.0])
        with pytest.raises(Exception):
            BFDSUPlacement(rng=np.random.default_rng(5)).place(problem)

    def test_restart_budget_exhaustion(self):
        # Feasible only via a perfect split; with max_restarts=0 a single
        # unlucky attempt raises MaxRestartsExceededError.  Use a seed
        # known to draw the dead-end branch.
        problem = _problem([4.0, 3.0, 3.0, 2.0], [6.0, 6.0])
        algo = BFDSUPlacement(
            rng=np.random.default_rng(0), max_restarts=200
        )
        result = algo.place(problem)  # must eventually succeed
        result.validate()

    def test_hard_instance_succeeds_with_restarts(self):
        # Tight pack: items sum exactly to capacities.
        problem = _problem([5.0, 4.0, 3.0, 3.0, 3.0], [9.0, 9.0])
        result = BFDSUPlacement(rng=np.random.default_rng(11)).place(problem)
        result.validate()
        assert result.num_used_nodes == 2


class TestConsolidationQuality:
    def test_beats_or_ties_worst_fit_on_average(self):
        from repro.placement.random_fit import RandomFitPlacement

        rng = np.random.default_rng(42)
        bfdsu_nodes, random_nodes = [], []
        for rep in range(20):
            demands = list(rng.uniform(2.0, 8.0, size=10))
            caps = [15.0] * 10
            p1 = _problem(demands, caps)
            p2 = _problem(demands, caps)
            bfdsu_nodes.append(
                BFDSUPlacement(rng=np.random.default_rng(rep)).place(p1).num_used_nodes
            )
            random_nodes.append(
                RandomFitPlacement(rng=np.random.default_rng(rep)).place(p2).num_used_nodes
            )
        assert np.mean(bfdsu_nodes) < np.mean(random_nodes)


class TestBatchedDraws:
    """``draw_block`` amortizes RNG dispatch without changing placements."""

    def test_uniform_block_matches_scalar_stream(self):
        from repro.core.deltas import UniformBlock

        block = UniformBlock(np.random.default_rng(5), block=7)
        scalar = np.random.default_rng(5)
        for _ in range(25):
            assert block.next() == scalar.random()

    def test_scaled_block_draw_is_uniform_bitwise(self):
        # The identity the whole feature rests on:
        # uniform(0, s) == s * random(), one double consumed.
        for seed in range(10):
            a, b = np.random.default_rng(seed), np.random.default_rng(seed)
            s = 3.7215
            assert a.uniform(0.0, s) == s * b.random()

    def test_block_validates(self):
        from repro.core.deltas import UniformBlock

        with pytest.raises(ValueError):
            UniformBlock(np.random.default_rng(0), block=0)

    @pytest.mark.parametrize("block", [1, 3, 4096])
    def test_placements_identical_any_block_size(self, block):
        rng = np.random.default_rng(99)
        for seed in range(8):
            demands = list(rng.uniform(2.0, 8.0, size=30))
            problem_a = _problem(demands, [15.0] * 12)
            problem_b = _problem(demands, [15.0] * 12)
            plain = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
                problem_a
            )
            batched = BFDSUPlacement(
                rng=np.random.default_rng(seed), draw_block=block
            ).place(problem_b)
            assert batched.placement == plain.placement
            assert batched.iterations == plain.iterations

    def test_parity_through_restarts(self):
        # Tight pack forces "go back to Begin"; the draw sequence must
        # stay aligned across discarded attempts.
        for seed in (11, 23, 57):
            problem_a = _problem([5.0, 4.0, 3.0, 3.0, 3.0], [9.0, 9.0])
            problem_b = _problem([5.0, 4.0, 3.0, 3.0, 3.0], [9.0, 9.0])
            plain = BFDSUPlacement(rng=np.random.default_rng(seed)).place(
                problem_a
            )
            batched = BFDSUPlacement(
                rng=np.random.default_rng(seed), draw_block=2
            ).place(problem_b)
            assert batched.placement == plain.placement
            assert batched.iterations == plain.iterations

    def test_parity_across_repeated_place_calls(self):
        # The block persists on the object: the second place() continues
        # from the buffered stream position, matching two scalar calls.
        plain = BFDSUPlacement(rng=np.random.default_rng(4))
        batched = BFDSUPlacement(rng=np.random.default_rng(4), draw_block=5)
        for demands in ([6.0, 5.0, 4.0, 3.0], [2.0] * 9, [7.0, 7.0, 1.0]):
            problem_a = _problem(demands, [10.0] * 6)
            problem_b = _problem(demands, [10.0] * 6)
            assert (
                batched.place(problem_b).placement
                == plain.place(problem_a).placement
            )
