"""Unit tests for the placement problem/result model."""

import pytest

from repro.exceptions import InfeasiblePlacementError, ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.vnf import VNF
from repro.placement.base import (
    PlacementProblem,
    PlacementResult,
    demand_sorted_vnfs,
)


@pytest.fixture
def vnfs():
    return [
        VNF("fw", 10.0, 2, 100.0),   # total 20
        VNF("nat", 5.0, 3, 200.0),   # total 15
        VNF("lb", 8.0, 1, 150.0),    # total 8
    ]


@pytest.fixture
def problem(vnfs):
    return PlacementProblem(
        vnfs=vnfs,
        capacities={"n0": 30.0, "n1": 25.0},
        chains=[ServiceChain(["fw", "nat"])],
    )


class TestProblem:
    def test_totals(self, problem):
        assert problem.total_demand() == pytest.approx(43.0)
        assert problem.total_capacity() == pytest.approx(55.0)

    def test_lookup(self, problem):
        assert problem.vnf("fw").name == "fw"
        with pytest.raises(ValidationError):
            problem.vnf("ghost")

    def test_no_vnfs_rejected(self):
        with pytest.raises(ValidationError):
            PlacementProblem(vnfs=[], capacities={"n0": 1.0})

    def test_no_nodes_rejected(self, vnfs):
        with pytest.raises(ValidationError):
            PlacementProblem(vnfs=vnfs, capacities={})

    def test_duplicate_names_rejected(self):
        dup = [VNF("fw", 1.0, 1, 1.0), VNF("fw", 2.0, 1, 1.0)]
        with pytest.raises(ValidationError):
            PlacementProblem(vnfs=dup, capacities={"n0": 10.0})

    def test_chain_over_unknown_vnf_rejected(self, vnfs):
        with pytest.raises(ValidationError):
            PlacementProblem(
                vnfs=vnfs,
                capacities={"n0": 100.0},
                chains=[ServiceChain(["ghost"])],
            )

    def test_zero_capacity_node_rejected(self, vnfs):
        with pytest.raises(ValidationError):
            PlacementProblem(vnfs=vnfs, capacities={"n0": 0.0})

    def test_necessary_feasibility(self, problem):
        problem.check_necessary_feasibility()

    def test_oversized_vnf_detected(self, vnfs):
        p = PlacementProblem(vnfs=vnfs, capacities={"n0": 10.0, "n1": 50.0})
        p.check_necessary_feasibility()
        p2 = PlacementProblem(vnfs=vnfs, capacities={"n0": 19.0, "n1": 19.0, "n2": 19.0})
        with pytest.raises(InfeasiblePlacementError):
            p2.check_necessary_feasibility()

    def test_total_overflow_detected(self, vnfs):
        p = PlacementProblem(vnfs=vnfs, capacities={"n0": 21.0, "n1": 21.0})
        with pytest.raises(InfeasiblePlacementError):
            p.check_necessary_feasibility()


class TestResult:
    def test_metrics(self, problem):
        result = PlacementResult(
            placement={"fw": "n0", "nat": "n1", "lb": "n1"},
            problem=problem,
            algorithm="test",
        )
        result.validate()
        assert result.num_used_nodes == 2
        # n0: 20/30, n1: 23/25.
        assert result.average_utilization == pytest.approx(
            (20.0 / 30.0 + 23.0 / 25.0) / 2.0
        )
        assert result.total_occupied_capacity == pytest.approx(55.0)
        assert result.node_of("fw") == "n0"

    def test_unplaced_vnf_detected(self, problem):
        result = PlacementResult(
            placement={"fw": "n0"}, problem=problem
        )
        with pytest.raises(ValidationError, match="Eq. 2"):
            result.validate()

    def test_overload_detected(self, problem):
        result = PlacementResult(
            placement={"fw": "n1", "nat": "n1", "lb": "n1"},
            problem=problem,
        )
        with pytest.raises(ValidationError, match="Eq. 6"):
            result.validate()

    def test_unknown_node_detected(self, problem):
        result = PlacementResult(
            placement={"fw": "ghost", "nat": "n0", "lb": "n0"},
            problem=problem,
        )
        with pytest.raises(ValidationError):
            result.validate()

    def test_node_of_unplaced(self, problem):
        result = PlacementResult(placement={}, problem=problem)
        with pytest.raises(ValidationError):
            result.node_of("fw")


class TestDemandSorting:
    def test_descending(self, problem):
        names = [f.name for f in demand_sorted_vnfs(problem)]
        assert names == ["fw", "nat", "lb"]

    def test_deterministic_ties(self):
        vnfs = [VNF("b", 5.0, 1, 1.0), VNF("a", 5.0, 1, 1.0)]
        p = PlacementProblem(vnfs=vnfs, capacities={"n0": 100.0})
        names = [f.name for f in demand_sorted_vnfs(p)]
        assert names == ["a", "b"]
