"""Property-based tests for the bin-packing substrate (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binpack import (
    best_fit_decreasing,
    first_fit_decreasing,
    worst_fit_decreasing,
)
from repro.binpack.base import make_bins, make_items
from repro.binpack.lower_bounds import min_bins_possible
from repro.exceptions import InfeasiblePlacementError

# Items small enough relative to bins that total volume fits comfortably.
sizes_strategy = st.lists(
    st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
    min_size=1,
    max_size=25,
)

PACKERS = [first_fit_decreasing, best_fit_decreasing, worst_fit_decreasing]


@pytest.mark.parametrize("packer", PACKERS)
@given(sizes=sizes_strategy)
@settings(max_examples=40, deadline=None)
def test_every_item_packed_exactly_once(packer, sizes):
    items = make_items(sizes)
    # Generous bins: one per item, each fitting the largest item.
    bins = make_bins([3.0] * len(sizes))
    result = packer(items, bins)
    result.validate(items)


@pytest.mark.parametrize("packer", PACKERS)
@given(sizes=sizes_strategy)
@settings(max_examples=40, deadline=None)
def test_capacity_never_exceeded(packer, sizes):
    items = make_items(sizes)
    bins = make_bins([3.5] * len(sizes))
    result = packer(items, bins)
    for b in result.bins:
        assert b.used <= b.capacity + 1e-9


@given(sizes=sizes_strategy)
@settings(max_examples=40, deadline=None)
def test_heuristics_respect_lower_bound(sizes):
    caps = [4.0] * len(sizes)
    bound = min_bins_possible(sizes, caps)
    for packer in PACKERS:
        result = packer(make_items(sizes), make_bins(caps))
        assert result.num_used_bins >= bound


@given(sizes=sizes_strategy)
@settings(max_examples=40, deadline=None)
def test_ffd_within_two_of_continuous_bound(sizes):
    """FFD's classic guarantee (loose form) on uniform bins.

    FFD <= (11/9) OPT + 1 <= (11/9) bound + 1; we assert the looser
    2 * bound + 1 which must always hold.
    """
    caps = [4.0] * (len(sizes) * 2)
    bound = min_bins_possible(sizes, caps[: len(sizes)])
    result = first_fit_decreasing(make_items(sizes), make_bins(caps))
    assert result.num_used_bins <= 2 * bound + 1


@given(sizes=sizes_strategy)
@settings(max_examples=40, deadline=None)
def test_best_fit_never_uses_more_volume_than_worst_fit_spreads(sizes):
    """BFD consolidates: it never uses more bins than WFD."""
    bfd = best_fit_decreasing(make_items(sizes), make_bins([4.0] * len(sizes)))
    wfd = worst_fit_decreasing(make_items(sizes), make_bins([4.0] * len(sizes)))
    assert bfd.num_used_bins <= wfd.num_used_bins


@given(
    sizes=st.lists(
        st.floats(min_value=5.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=20, deadline=None)
def test_oversized_items_always_raise(sizes):
    items = make_items(sizes)
    bins = make_bins([4.0] * 10)  # every item exceeds every bin
    for packer in PACKERS:
        with pytest.raises(InfeasiblePlacementError):
            packer(items, make_bins([4.0] * 10))
