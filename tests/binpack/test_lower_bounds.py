"""Unit tests for the bin-count lower bounds."""

import pytest

from repro.binpack.lower_bounds import (
    best_l2_lower_bound,
    continuous_lower_bound,
    l2_lower_bound,
    min_bins_possible,
)
from repro.exceptions import ValidationError


class TestContinuousBound:
    def test_uniform_bins(self):
        # Total 10 over capacity-4 bins -> at least 3 bins.
        assert continuous_lower_bound([4.0, 3.0, 3.0], [4.0] * 5) == 3

    def test_heterogeneous_prefers_largest(self):
        # Total 10; one big bin of 10 suffices.
        assert continuous_lower_bound([5.0, 5.0], [10.0, 2.0, 2.0]) == 1

    def test_zero_items(self):
        assert continuous_lower_bound([], [5.0]) == 0

    def test_infeasible_raises(self):
        with pytest.raises(ValidationError):
            continuous_lower_bound([10.0], [4.0, 4.0])


class TestL2Bound:
    def test_threshold_zero_is_volume(self):
        assert l2_lower_bound([3.0, 3.0, 3.0], 5.0, threshold=0.0) == 2

    def test_big_items_counted_individually(self):
        # Threshold 2: items > 3 get private bins.
        bound = l2_lower_bound([4.0, 4.0, 1.0], 5.0, threshold=2.0)
        assert bound >= 2

    def test_improves_on_volume(self):
        # Six items of 0.6 into unit bins: volume says 4, L2 with t=0.5
        # says 6 (no two 0.6 items share a bin).
        sizes = [0.6] * 6
        assert l2_lower_bound(sizes, 1.0, threshold=0.0) == 4
        assert best_l2_lower_bound(sizes, 1.0) == 6

    def test_invalid_threshold(self):
        with pytest.raises(ValidationError):
            l2_lower_bound([1.0], 2.0, threshold=1.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            l2_lower_bound([1.0], 0.0)


class TestMinBinsPossible:
    def test_uniform_uses_l2(self):
        assert min_bins_possible([0.6] * 6, [1.0] * 10) == 6

    def test_heterogeneous_uses_continuous(self):
        assert min_bins_possible([5.0, 5.0], [10.0, 2.0]) == 1

    def test_bound_is_sound_for_ffd(self):
        # Any heuristic solution must use at least the bound.
        from repro.binpack import first_fit_decreasing
        from repro.binpack.base import make_bins, make_items

        sizes = [3.0, 3.0, 2.0, 2.0, 2.0, 4.0]
        caps = [5.0] * 6
        bound = min_bins_possible(sizes, caps)
        result = first_fit_decreasing(make_items(sizes), make_bins(caps))
        assert result.num_used_bins >= bound
