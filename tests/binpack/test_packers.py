"""Unit tests for the classic bin-packing heuristics."""

import pytest

from repro.binpack import (
    best_fit,
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    next_fit,
    worst_fit,
    worst_fit_decreasing,
)
from repro.binpack.base import make_bins, make_items
from repro.exceptions import InfeasiblePlacementError

ALL_PACKERS = [
    first_fit,
    first_fit_decreasing,
    best_fit,
    best_fit_decreasing,
    worst_fit,
    worst_fit_decreasing,
    next_fit,
]


@pytest.mark.parametrize("packer", ALL_PACKERS)
class TestCommonBehaviour:
    def test_all_items_packed(self, packer):
        items = make_items([3.0, 2.0, 4.0, 1.0])
        result = packer(items, make_bins([5.0, 5.0, 5.0, 5.0]))
        result.validate(items)

    def test_capacity_respected(self, packer):
        items = make_items([2.0, 2.0, 2.0])
        result = packer(items, make_bins([4.0, 4.0]))
        for b in result.bins:
            assert b.used <= b.capacity + 1e-9

    def test_oversized_item_raises(self, packer):
        with pytest.raises(InfeasiblePlacementError):
            packer(make_items([10.0]), make_bins([5.0, 5.0]))

    def test_empty_items(self, packer):
        result = packer([], make_bins([5.0]))
        assert result.num_used_bins == 0


class TestFirstFit:
    def test_scans_in_order(self):
        items = make_items([3.0])
        result = first_fit(items, make_bins([5.0, 5.0]))
        assert result.bin_of(0) == 0

    def test_skips_full_bins(self):
        items = make_items([4.0, 4.0])
        result = first_fit(items, make_bins([5.0, 5.0]))
        assert result.bin_of(0) == 0
        assert result.bin_of(1) == 1

    def test_backfills_earlier_bins(self):
        items = make_items([4.0, 3.0, 1.0])
        result = first_fit(items, make_bins([5.0, 5.0]))
        # The 1.0 item goes back into bin 0 next to the 4.0.
        assert result.bin_of(2) == 0

    def test_ffd_sorts_first(self):
        # Unsorted first-fit needs 3 bins; FFD fits in 2.
        sizes = [2.0, 2.0, 3.0, 3.0]
        ff = first_fit(make_items(sizes), make_bins([5.0] * 4))
        ffd = first_fit_decreasing(make_items(sizes), make_bins([5.0] * 4))
        assert ffd.num_used_bins <= ff.num_used_bins
        assert ffd.num_used_bins == 2


class TestBestFit:
    def test_picks_tightest(self):
        items = make_items([3.0])
        result = best_fit(items, make_bins([10.0, 4.0, 6.0]))
        assert result.bin_of(0) == 1

    def test_bfd_classic_instance(self):
        # Items 6,5,4,3,2 into bins of 10: BFD uses 2 bins.
        result = best_fit_decreasing(
            make_items([6.0, 5.0, 4.0, 3.0, 2.0]), make_bins([10.0] * 5)
        )
        assert result.num_used_bins == 2


class TestWorstFit:
    def test_picks_loosest(self):
        items = make_items([3.0])
        result = worst_fit(items, make_bins([4.0, 10.0, 6.0]))
        assert result.bin_of(0) == 1

    def test_spreads_load(self):
        result = worst_fit_decreasing(
            make_items([2.0, 2.0, 2.0]), make_bins([10.0, 10.0, 10.0])
        )
        # Each item lands on a different bin.
        assert result.num_used_bins == 3


class TestNextFit:
    def test_never_returns(self):
        items = make_items([4.0, 3.0, 1.0])
        result = next_fit(items, make_bins([5.0, 5.0]))
        # After moving to bin 1 for the 3.0, the 1.0 stays in bin 1.
        assert result.bin_of(2) == 1

    def test_can_fail_where_first_fit_succeeds(self):
        sizes = [4.0, 2.0, 4.0, 2.0]
        ff = first_fit(make_items(sizes), make_bins([5.0, 5.0, 5.0]))
        ff.validate(make_items(sizes))
        with pytest.raises(InfeasiblePlacementError):
            next_fit(make_items(sizes), make_bins([5.0, 5.0, 5.0]))


class TestIterationAccounting:
    def test_first_fit_counts_scans(self):
        items = make_items([3.0, 3.0])
        result = first_fit(items, make_bins([5.0, 5.0]))
        # Item 0: 1 scan; item 1: bin0 fails, bin1 fits -> 2 scans.
        assert result.iterations == 3

    def test_best_fit_scans_all_bins(self):
        items = make_items([3.0, 3.0])
        result = best_fit(items, make_bins([5.0, 5.0, 5.0]))
        assert result.iterations == 6
