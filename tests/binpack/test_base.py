"""Unit tests for the bin-packing data model."""

import pytest

from repro.binpack.base import (
    Bin,
    Item,
    PackingResult,
    check_feasible_sizes,
    find_fitting,
    make_bins,
    make_items,
    sorted_decreasing,
)
from repro.exceptions import InfeasiblePlacementError, ValidationError


class TestItem:
    def test_valid(self):
        assert Item(key="a", size=1.5).size == 1.5

    def test_zero_size_allowed(self):
        assert Item(key="z", size=0.0).size == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Item(key="a", size=-1.0)


class TestBin:
    def test_add_and_residual(self):
        b = Bin("b0", 10.0)
        b.add(Item("a", 4.0))
        assert b.used == pytest.approx(4.0)
        assert b.residual == pytest.approx(6.0)
        assert b.utilization == pytest.approx(0.4)

    def test_fits_boundary(self):
        b = Bin("b0", 10.0)
        assert b.fits(Item("a", 10.0))
        assert not b.fits(Item("a", 10.1))

    def test_overflow_rejected(self):
        b = Bin("b0", 5.0)
        b.add(Item("a", 3.0))
        with pytest.raises(InfeasiblePlacementError):
            b.add(Item("b", 3.0))

    def test_remove(self):
        b = Bin("b0", 5.0)
        item = Item("a", 3.0)
        b.add(item)
        b.remove(item)
        assert b.is_empty

    def test_zero_capacity_bin(self):
        b = Bin("b0", 0.0)
        assert b.utilization == 0.0
        assert b.fits(Item("a", 0.0))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            Bin("b0", -1.0)


class TestPackingResult:
    def _packed(self):
        bins = make_bins([10.0, 5.0, 8.0])
        items = make_items([6.0, 4.0])
        bins[0].add(items[0])
        bins[2].add(items[1])
        return PackingResult(bins=bins), items

    def test_used_bins(self):
        result, _ = self._packed()
        assert result.num_used_bins == 2
        assert {b.key for b in result.used_bins} == {0, 2}

    def test_average_utilization_over_used_only(self):
        result, _ = self._packed()
        assert result.average_utilization == pytest.approx(
            (6.0 / 10.0 + 4.0 / 8.0) / 2.0
        )

    def test_total_occupied(self):
        result, _ = self._packed()
        assert result.total_occupied_capacity == pytest.approx(18.0)

    def test_assignment_derived(self):
        result, _ = self._packed()
        assert result.bin_of(0) == 0
        assert result.bin_of(1) == 2

    def test_unknown_item_rejected(self):
        result, _ = self._packed()
        with pytest.raises(ValidationError):
            result.bin_of("nope")

    def test_validate_accepts_good_packing(self):
        result, items = self._packed()
        result.validate(items)

    def test_validate_detects_missing_item(self):
        result, items = self._packed()
        with pytest.raises(ValidationError):
            result.validate(items + [Item("ghost", 1.0)])

    def test_empty_result(self):
        result = PackingResult(bins=make_bins([5.0]))
        assert result.average_utilization == 0.0
        assert result.num_used_bins == 0


class TestHelpers:
    def test_sorted_decreasing(self):
        items = make_items([1.0, 5.0, 3.0])
        sizes = [i.size for i in sorted_decreasing(items)]
        assert sizes == [5.0, 3.0, 1.0]

    def test_sorted_decreasing_deterministic_ties(self):
        items = [Item("b", 2.0), Item("a", 2.0)]
        keys = [i.key for i in sorted_decreasing(items)]
        assert keys == sorted(keys, key=repr)

    def test_check_feasible_passes(self):
        check_feasible_sizes(make_items([3.0, 4.0]), make_bins([5.0, 5.0]))

    def test_check_feasible_oversized_item(self):
        with pytest.raises(InfeasiblePlacementError):
            check_feasible_sizes(make_items([6.0]), make_bins([5.0]))

    def test_check_feasible_total_overflow(self):
        with pytest.raises(InfeasiblePlacementError):
            check_feasible_sizes(make_items([4.0, 4.0]), make_bins([5.0]))

    def test_check_feasible_no_bins(self):
        with pytest.raises(InfeasiblePlacementError):
            check_feasible_sizes(make_items([1.0]), [])

    def test_find_fitting(self):
        bins = make_bins([2.0, 5.0])
        assert find_fitting(bins, Item("a", 3.0)).key == 1
        assert find_fitting(bins, Item("a", 6.0)) is None
