"""Unit tests for the serving loop (``repro.serve.service``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import DeploymentEngine
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF
from repro.serve.events import ChurnEvent, poisson_churn
from repro.serve.service import ServeReport, ServingLayer


def _engine(target=None, mu=100.0):
    vnfs = [
        VNF("fw", demand_per_instance=10.0, num_instances=2,
            service_rate=mu),
        VNF("lb", demand_per_instance=8.0, num_instances=2,
            service_rate=mu),
    ]
    caps = {"n0": 40.0, "n1": 40.0}
    return DeploymentEngine(vnfs, caps, target_utilization=target)


def _arrival(t, rid, names, rate):
    request = Request(rid, ServiceChain(list(names)), rate)
    return ChurnEvent(time=t, kind="arrival", request_id=rid,
                      request=request)


def _departure(t, rid):
    return ChurnEvent(time=t, kind="departure", request_id=rid)


class TestProcess:
    def test_counts_and_final_active(self):
        layer = ServingLayer(_engine())
        report = layer.process([
            _arrival(0.0, "a", ["fw"], 5.0),
            _arrival(1.0, "b", ["fw", "lb"], 3.0),
            _departure(2.0, "a"),
            _arrival(3.0, "c", ["lb"], 2.0),
        ])
        assert isinstance(report, ServeReport)
        assert report.arrivals == 3
        assert report.admitted == 3
        assert report.departures == 1
        assert report.rejected == 0
        assert report.final_active == 2
        assert layer.engine.num_active == 2
        assert len(report.admit_latencies) == 3
        assert report.mean_admit_latency > 0.0
        assert report.max_admit_latency >= report.mean_admit_latency

    def test_rejected_departure_is_skipped_not_retracted(self):
        # Cap 100 * 0.5 = 50 per instance; the 60-rate arrival bounces.
        layer = ServingLayer(_engine(target=0.5))
        report = layer.process([
            _arrival(0.0, "a", ["fw"], 40.0),
            _arrival(1.0, "big", ["fw"], 60.0),
            _departure(2.0, "big"),  # must not raise / must not count
            _departure(3.0, "a"),
        ])
        assert report.rejected_capacity == 1
        assert report.rejection_rate == pytest.approx(0.5)
        assert report.departures == 1
        assert report.final_active == 0

    def test_rebalance_cadence(self):
        layer = ServingLayer(_engine(), rebalance_every=2)
        events = [
            _arrival(float(i), f"r{i}", ["fw"], 1.0) for i in range(5)
        ]
        report = layer.process(events)
        # 5 admits at cadence 2 -> rebalances after admits 2 and 4.
        assert report.rebalances == 2
        assert len(report.rebalance_latencies) == 2
        assert report.mean_rebalance_latency > 0.0

    def test_zero_cadence_never_rebalances(self):
        layer = ServingLayer(_engine(), rebalance_every=0)
        report = layer.process(
            [_arrival(float(i), f"r{i}", ["fw"], 1.0) for i in range(6)]
        )
        assert report.rebalances == 0

    def test_unknown_kind_rejected(self):
        layer = ServingLayer(_engine())
        with pytest.raises(ValidationError):
            layer.process(
                [ChurnEvent(time=0.0, kind="meteor", request_id="x")]
            )

    def test_arrival_without_request_rejected(self):
        layer = ServingLayer(_engine())
        with pytest.raises(ValidationError):
            layer.process(
                [ChurnEvent(time=0.0, kind="arrival", request_id="x")]
            )

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValidationError):
            ServingLayer(_engine(), rebalance_every=-1)


class TestEndToEnd:
    def test_churn_trace_replay_is_deterministic_in_outcome(self):
        chains = [ServiceChain(["fw", "lb"]), ServiceChain(["lb"])]
        events = poisson_churn(
            chains,
            duration=300.0,
            arrival_rate=0.1,
            mean_holding=40.0,
            rng=np.random.default_rng(11),
            rate_range=(1.0, 10.0),
        )
        outcomes = []
        for _ in range(2):
            layer = ServingLayer(_engine(mu=1000.0), rebalance_every=5)
            report = layer.process(events)
            outcomes.append(
                (report.admitted, report.rejected, report.departures,
                 report.migrations, report.final_active,
                 tuple(layer.engine.active_requests))
            )
        assert outcomes[0] == outcomes[1]
        # Bookkeeping closes: arrivals all accounted for.
        report_admitted = outcomes[0][0]
        assert report_admitted - outcomes[0][2] == outcomes[0][4]
