"""Unit tests for the churn event generator (``repro.serve.events``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.serve.events import ChurnEvent, poisson_churn

CHAINS = [ServiceChain(["fw", "nat"]), ServiceChain(["lb"])]


def _trace(seed=20170605, **overrides):
    params = dict(
        duration=500.0,
        arrival_rate=0.2,
        mean_holding=50.0,
        rng=np.random.default_rng(seed),
    )
    params.update(overrides)
    return poisson_churn(CHAINS, **params)


class TestShape:
    def test_time_sorted_and_within_horizon(self):
        events = _trace()
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 500.0 or e.kind == "departure"
                   for t, e in zip(times, events))
        assert all(e.time < 500.0 for e in events)

    def test_every_departure_follows_its_arrival(self):
        events = _trace()
        arrived = set()
        for event in events:
            if event.kind == "arrival":
                assert event.request is not None
                assert event.request.request_id == event.request_id
                arrived.add(event.request_id)
            else:
                assert event.request is None
                assert event.request_id in arrived

    def test_departures_past_duration_are_dropped(self):
        # Long holding: essentially no request leaves inside the horizon.
        events = _trace(mean_holding=1e9)
        assert all(e.kind == "arrival" for e in events)

    def test_request_fields_are_plausible(self):
        events = _trace()
        arrivals = [e for e in events if e.kind == "arrival"]
        assert arrivals
        chain_keys = {c.vnf_names for c in CHAINS}
        for event in arrivals:
            assert event.request.chain.vnf_names in chain_keys
            assert 1.0 <= event.request.arrival_rate <= 100.0

    def test_steady_state_population_tracks_littles_law(self):
        # lambda * holding = 0.2 * 50 = 10 expected actives.
        events = _trace(duration=5000.0)
        active = 0
        peak = 0
        for event in events:
            active += 1 if event.kind == "arrival" else -1
            peak = max(peak, active)
        assert 3 <= peak <= 40  # loose band around 10


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = _trace(seed=7)
        b = _trace(seed=7)
        assert a == b  # frozen dataclasses compare by value

    def test_different_seed_different_trace(self):
        assert _trace(seed=7) != _trace(seed=8)

    def test_prefix_names_ids(self):
        events = poisson_churn(
            CHAINS,
            duration=100.0,
            arrival_rate=0.5,
            mean_holding=20.0,
            rng=np.random.default_rng(3),
            prefix="trial9",
        )
        assert all(e.request_id.startswith("trial9-") for e in events)


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValidationError):
            _trace(duration=0.0)

    def test_bad_rates(self):
        with pytest.raises(ValidationError):
            _trace(arrival_rate=-1.0)
        with pytest.raises(ValidationError):
            _trace(mean_holding=0.0)

    def test_no_chains(self):
        with pytest.raises(ValidationError):
            poisson_churn(
                [], duration=10.0, arrival_rate=1.0, mean_holding=1.0
            )


class TestEventDataclass:
    def test_frozen(self):
        event = ChurnEvent(time=1.0, kind="arrival", request_id="x")
        with pytest.raises(AttributeError):
            event.time = 2.0
