"""Unit tests for JSON serialization round-trips."""

import numpy as np
import pytest

from repro import io
from repro.core.joint import JointOptimizer
from repro.exceptions import ValidationError
from repro.nfv.chain import ServiceChain
from repro.nfv.request import Request
from repro.nfv.vnf import VNF, VNFCategory
from repro.placement.bfd import BFDPlacement
from repro.workload.generator import WorkloadGenerator


@pytest.fixture
def workload():
    gen = WorkloadGenerator(np.random.default_rng(9))
    return gen.workload(num_vnfs=6, num_nodes=4, num_requests=15)


class TestVnfRoundTrip:
    def test_roundtrip(self):
        vnf = VNF("fw", 10.0, 3, 200.0, category=VNFCategory.SECURITY)
        back = io.vnf_from_dict(io.vnf_to_dict(vnf))
        assert back == vnf

    def test_missing_field(self):
        with pytest.raises(ValidationError):
            io.vnf_from_dict({"name": "fw"})

    def test_default_category(self):
        data = io.vnf_to_dict(VNF("fw", 1.0, 1, 1.0))
        del data["category"]
        assert io.vnf_from_dict(data).category is VNFCategory.OTHER


class TestRequestRoundTrip:
    def test_roundtrip(self):
        r = Request("r0", ServiceChain(["a", "b"]), 5.0, 0.98)
        back = io.request_from_dict(io.request_to_dict(r))
        assert back == r

    def test_missing_field(self):
        with pytest.raises(ValidationError):
            io.request_from_dict({"request_id": "x"})


class TestWorkloadRoundTrip:
    def test_roundtrip_preserves_everything(self, workload):
        back = io.workload_from_dict(io.workload_to_dict(workload))
        assert back.vnfs == workload.vnfs
        assert back.requests == workload.requests
        assert back.capacities == workload.capacities
        assert [c.vnf_names for c in back.chains] == [
            c.vnf_names for c in workload.chains
        ]

    def test_wrong_kind_rejected(self, workload):
        data = io.workload_to_dict(workload)
        data["kind"] = "deployment"
        with pytest.raises(ValidationError):
            io.workload_from_dict(data)

    def test_wrong_version_rejected(self, workload):
        data = io.workload_to_dict(workload)
        data["format_version"] = 999
        with pytest.raises(ValidationError):
            io.workload_from_dict(data)


class TestStateRoundTrip:
    def test_roundtrip_valid_solution(self, workload):
        solution = JointOptimizer(placement=BFDPlacement()).optimize(
            workload.vnfs, workload.requests, workload.capacities
        )
        data = io.state_to_dict(solution.state)
        back = io.state_from_dict(data)
        assert back.placement == solution.state.placement
        assert back.schedule == solution.state.schedule
        # Metrics survive the round trip bit-for-bit.
        assert back.average_node_utilization() == pytest.approx(
            solution.state.average_node_utilization()
        )

    def test_corrupted_schedule_rejected_on_load(self, workload):
        solution = JointOptimizer(placement=BFDPlacement()).optimize(
            workload.vnfs, workload.requests, workload.capacities
        )
        data = io.state_to_dict(solution.state)
        data["schedule"][0]["instance"] = 999
        with pytest.raises(ValidationError):
            io.state_from_dict(data)


class TestFiles:
    def test_save_and_load(self, workload, tmp_path):
        path = tmp_path / "workload.json"
        io.save_json(io.workload_to_dict(workload), path)
        back = io.workload_from_dict(io.load_json(path))
        assert back.capacities == workload.capacities

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            io.load_json(path)
