"""Unit tests for recovery policies and the migration budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import DeploymentEngine
from repro.faults.recovery import (
    DeferredRecovery,
    LeastLoadedReadmit,
    MigrationBudget,
    RecoveryOutcome,
    WarmStartRelocate,
)
from repro.workload.generator import WorkloadGenerator


class TestMigrationBudget:
    def test_caps_enforced_independently(self):
        budget = MigrationBudget(max_migrations=2, max_moved_load=10.0)
        assert budget.can_charge(1, 5.0)
        assert budget.try_charge(1, 5.0)
        # Count cap: 1 + 2 > 2.
        assert not budget.try_charge(2, 1.0)
        # Load cap: 5 + 6 > 10.
        assert not budget.try_charge(1, 6.0)
        # Failed charges are all-or-nothing: nothing was booked.
        assert budget.spent_migrations == 1
        assert budget.spent_load == 5.0
        assert budget.try_charge(1, 5.0)
        assert budget.spent_migrations == 2
        assert budget.spent_load == 10.0
        assert not budget.can_charge(1, 0.0)

    def test_reset_opens_fresh_episode(self):
        budget = MigrationBudget(max_migrations=1)
        assert budget.try_charge(1, 3.0)
        assert not budget.can_charge(1, 0.0)
        budget.reset()
        assert budget.spent_migrations == 0
        assert budget.spent_load == 0.0
        assert budget.try_charge(1, 3.0)

    def test_unbounded_by_default(self):
        budget = MigrationBudget()
        assert budget.try_charge(10_000, 1e12)
        assert budget.can_charge(10_000, 1e12)


def _crashed_engine(seed=20170605, actives=60):
    """An engine that just lost its lightest genuinely-hosting node."""
    gen = WorkloadGenerator(np.random.default_rng(seed))
    w = gen.workload(num_vnfs=12, num_nodes=24, num_requests=actives)
    engine = DeploymentEngine(
        w.vnfs, w.capacities, list(w.requests), target_utilization=None
    )
    hosted = {}
    for node in engine.placement.values():
        hosted[node] = hosted.get(node, 0) + 1
    for victim in sorted(hosted, key=lambda n: (hosted[n], str(n))):
        evicted = engine.fail_node(victim)
        if evicted:
            return engine, victim, evicted
        engine.recover_node(victim)
    raise AssertionError("no crash evicted anything")


@pytest.mark.parametrize(
    "policy_cls", [LeastLoadedReadmit, WarmStartRelocate]
)
class TestImmediatePolicies:
    def test_repairs_placement_and_readmits(self, policy_cls):
        engine, victim, evicted = _crashed_engine()
        stranded = [
            name for name, node in engine.placement.items()
            if node == victim
        ]
        assert stranded, "the victim should strand at least one VNF"
        outcome = policy_cls().recover(engine, evicted)
        # Every stranded VNF left the failed node.
        assert all(
            engine.placement[name] != victim for name in stranded
        )
        assert outcome.vnf_moves == len(stranded)
        # Capacity-only admission over healthy nodes: everything fits.
        assert outcome.pending == []
        assert outcome.readmitted == [
            request.request_id for request in evicted
        ]
        assert outcome.moved_load > 0.0
        assert engine.num_active == 60

    def test_deterministic(self, policy_cls):
        a_engine, _, a_evicted = _crashed_engine()
        b_engine, _, b_evicted = _crashed_engine()
        a = policy_cls().recover(a_engine, a_evicted)
        b = policy_cls().recover(b_engine, b_evicted)
        assert a == b
        assert a_engine.placement == b_engine.placement
        assert dict(a_engine.state().schedule) == dict(
            b_engine.state().schedule
        )

    def test_zero_budget_leaves_everything_pending(self, policy_cls):
        engine, victim, evicted = _crashed_engine()
        active_before = engine.active_requests
        placement_before = dict(engine.placement)
        budget = MigrationBudget(max_migrations=0)
        outcome = policy_cls().recover(engine, evicted, budget=budget)
        assert outcome.readmitted == []
        assert outcome.vnf_moves == 0
        assert outcome.moved_load == 0.0
        assert outcome.pending == [
            request.request_id for request in evicted
        ]
        assert engine.active_requests == active_before
        assert dict(engine.placement) == placement_before
        assert budget.spent_migrations == 0

    def test_partial_budget_charges_what_fits(self, policy_cls):
        engine, _victim, evicted = _crashed_engine()
        # Room for the relocations plus exactly two re-admissions.
        stranded = sum(
            1 for node in engine.placement.values()
            if node in engine.failed_nodes
        )
        budget = MigrationBudget(max_migrations=stranded + 2)
        outcome = policy_cls().recover(engine, evicted, budget=budget)
        assert len(outcome.readmitted) == 2
        assert outcome.readmitted == [
            request.request_id for request in evicted[:2]
        ]
        assert len(outcome.pending) == len(evicted) - 2
        assert budget.spent_migrations == stranded + 2


class TestLeastLoadedTarget:
    def test_target_is_emptiest_feasible_healthy_node(self):
        engine, victim, evicted = _crashed_engine()
        arrays = engine.arrays
        stranded = sorted(
            (
                name for name, node in engine.placement.items()
                if node == victim
            ),
            key=arrays.vnf_index.get,
        )
        # Expected target of the FIRST relocation, computed from the
        # pre-recovery residuals.
        loads = arrays.node_loads(engine.placement_vector())
        residual = arrays.A_v - loads
        fi = arrays.vnf_index[stranded[0]]
        demand = float(arrays.total_demand_f[fi])
        healthy = np.array(
            [
                node not in engine.failed_nodes
                for node in arrays.node_keys
            ]
        )
        feasible = healthy & (residual >= demand)
        expected = arrays.node_keys[
            int(np.argmax(np.where(feasible, residual, -np.inf)))
        ]
        LeastLoadedReadmit().recover(engine, evicted)
        assert engine.placement[stranded[0]] == expected


class TestDeferredRecovery:
    def test_everything_stays_pending(self):
        engine, _victim, evicted = _crashed_engine()
        placement_before = dict(engine.placement)
        outcome = DeferredRecovery().recover(engine, evicted)
        assert outcome == RecoveryOutcome(
            pending=[request.request_id for request in evicted]
        )
        assert dict(engine.placement) == placement_before
