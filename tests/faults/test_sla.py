"""Unit tests for SLA spell integration (``repro.faults.sla``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.faults.sla import ResilienceReport, SLASpec, SLATracker


class FakeEngine:
    """A stand-in exposing only ``request_response_times``."""

    def __init__(self, latencies):
        self.latencies = np.asarray(latencies, dtype=float)
        self.calls = 0

    def request_response_times(self, link_latency=0.0):
        self.calls += 1
        ids = tuple(f"r{i}" for i in range(len(self.latencies)))
        return ids, self.latencies


class TestSLASpec:
    @pytest.mark.parametrize("target", [0.0, -0.1, 1.5])
    def test_bad_availability_target(self, target):
        with pytest.raises(ValidationError, match="availability_target"):
            SLASpec(availability_target=target)

    @pytest.mark.parametrize("threshold", [0.0, -1.0])
    def test_bad_latency_threshold(self, threshold):
        with pytest.raises(ValidationError, match="latency_threshold"):
            SLASpec(latency_threshold=threshold)

    def test_bad_check_every(self):
        with pytest.raises(ValidationError, match="check_every"):
            SLASpec(check_every=0)

    def test_defaults_accepted(self):
        spec = SLASpec()
        assert spec.latency_threshold is None
        assert spec.availability_target == 0.999


class TestSpellIntegration:
    def test_recovery_spell_and_rejection_spell(self):
        tracker = SLATracker(SLASpec())
        tracker.on_arrival("a", 0.0)
        tracker.on_arrival("b", 0.0)
        tracker.on_reject("b", 0.0)
        tracker.on_evict("a", 10.0)
        tracker.on_readmit("a", 15.0)
        tracker.on_departure("a", 20.0)
        tracker.on_departure("b", 30.0)
        report = tracker.finish(30.0)
        # Demanded: a 20s + b 30s.  Downtime: a's 5s eviction spell +
        # b's 30s rejected lifetime.
        assert report.demanded_seconds == 50.0
        assert report.downtime_seconds == 35.0
        assert report.availability == pytest.approx(15.0 / 50.0)
        assert report.recovery_spells == [5.0]
        assert report.readmissions == 1
        assert report.evictions == 1
        assert report.lost == 0
        assert report.mean_recovery_spell == 5.0

    def test_departed_while_pending_counts_as_lost(self):
        tracker = SLATracker(SLASpec())
        tracker.on_arrival("a", 0.0)
        tracker.on_evict("a", 4.0)
        tracker.on_departure("a", 10.0)
        report = tracker.finish(10.0)
        assert report.lost == 1
        assert report.readmissions == 0
        assert report.downtime_seconds == 6.0
        assert report.recovery_spells == []

    def test_finish_clips_open_spells_to_horizon(self):
        tracker = SLATracker(SLASpec())
        tracker.on_arrival("a", 2.0)
        tracker.on_evict("a", 10.0)
        report = tracker.finish(20.0)
        assert report.demanded_seconds == 18.0
        assert report.downtime_seconds == 10.0
        # Clipped at the horizon: neither re-admitted nor lost.
        assert report.readmissions == 0
        assert report.lost == 0

    def test_readmit_without_open_spell_is_a_noop(self):
        tracker = SLATracker(SLASpec())
        tracker.on_readmit("ghost", 5.0)
        report = tracker.finish(10.0)
        assert report.downtime_seconds == 0.0
        assert report.readmissions == 0

    def test_availability_with_no_demand_is_one(self):
        report = SLATracker(SLASpec()).finish(100.0)
        assert report.availability == 1.0
        assert report.availability_met


class TestLatencyIntegration:
    def test_step_integration(self):
        tracker = SLATracker(SLASpec(latency_threshold=1.0))
        engine = FakeEngine([2.0, 0.5])
        tracker.sample_latency(0.0, engine)
        # One chain violating, held constant over [0, 10).
        engine.latencies = np.array([0.5, 0.5])
        tracker.sample_latency(10.0, engine)
        report = tracker.finish(20.0, engine)
        assert report.violation_seconds == 10.0
        assert report.violation_minutes == pytest.approx(10.0 / 60.0)

    def test_check_every_skips_samples_unless_forced(self):
        tracker = SLATracker(
            SLASpec(latency_threshold=1.0, check_every=3)
        )
        engine = FakeEngine([2.0])
        tracker.sample_latency(0.0, engine)
        tracker.sample_latency(1.0, engine)
        assert engine.calls == 0
        tracker.sample_latency(2.0, engine)
        assert engine.calls == 1
        tracker.sample_latency(3.0, engine, force=True)
        assert engine.calls == 2

    def test_disabled_without_threshold(self):
        tracker = SLATracker(SLASpec())
        engine = FakeEngine([100.0])
        tracker.sample_latency(0.0, engine)
        tracker.sample_latency(50.0, engine)
        report = tracker.finish(50.0, engine)
        assert engine.calls == 0
        assert report.violation_seconds == 0.0


class TestResilienceReport:
    def test_served_seconds_never_negative(self):
        report = ResilienceReport(
            demanded_seconds=5.0, downtime_seconds=9.0
        )
        assert report.served_seconds == 0.0
        assert report.availability == 0.0

    def test_availability_met_threshold(self):
        report = ResilienceReport(
            demanded_seconds=1000.0,
            downtime_seconds=0.5,
            availability_target=0.999,
        )
        assert report.availability_met
        report.downtime_seconds = 1.5
        assert not report.availability_met
