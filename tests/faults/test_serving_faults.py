"""Serving-layer fault path + fault-free byte-identity regression.

The acceptance bar for PR 9: with ``faults=None`` and ``sla=None`` the
serving layer is byte-identical to the pre-fault implementation.  The
two regression baselines below were captured from the pre-change code
and every count, the surviving request set, and the dense-run active-id
digest are pinned exactly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.incremental import DeploymentEngine
from repro.experiments import churn
from repro.faults.events import FaultEvent, failure_events
from repro.faults.recovery import (
    DeferredRecovery,
    LeastLoadedReadmit,
    MigrationBudget,
    WarmStartRelocate,
)
from repro.faults.sla import SLASpec
from repro.serve.events import poisson_churn
from repro.serve.service import ServingLayer
from repro.workload.generator import WorkloadGenerator


class TestFaultFreeByteIdentity:
    """Pinned pre-PR-9 baselines: the default path must not move."""

    def test_sparse_baseline(self):
        root = np.random.SeedSequence([20170802, 0])
        scenario_ss, churn_ss = root.spawn(2)
        vnfs, capacities, chains = churn._scenario(scenario_ss)
        events = poisson_churn(
            chains,
            duration=600.0,
            arrival_rate=0.03,
            mean_holding=120.0,
            rng=np.random.default_rng(churn_ss),
            prefix="churn0",
        )
        assert len(events) == 21
        engine = DeploymentEngine(vnfs, capacities)
        report = ServingLayer(engine, rebalance_every=5).process(events)
        assert report.arrivals == 11
        assert report.admitted == 11
        assert report.rejected_capacity == 0
        assert report.rejected_bandwidth == 0
        assert report.departures == 10
        assert report.rebalances == 2
        assert report.migrations == 3
        assert report.final_active == 1
        assert engine.active_requests == ("churn0-000009",)
        # The fault-era counters exist but stay untouched.
        assert report.rejected_unavailable == 0
        assert report.crashes == 0
        assert report.evictions == 0
        assert report.rebalances_skipped == 0
        assert report.recovery_latencies == []
        assert report.resilience is None

    def test_dense_baseline(self):
        root = np.random.SeedSequence([20170802, 1])
        scenario_ss, churn_ss = root.spawn(2)
        gen = WorkloadGenerator(np.random.default_rng(scenario_ss))
        w = gen.workload(num_vnfs=10, num_nodes=16, num_requests=25)
        seen = set()
        chains = []
        for request in w.requests:
            key = request.chain.vnf_names
            if key not in seen:
                seen.add(key)
                chains.append(request.chain)
        events = poisson_churn(
            chains,
            duration=1800.0,
            arrival_rate=0.4,
            mean_holding=400.0,
            rng=np.random.default_rng(churn_ss),
            prefix="dense",
        )
        assert len(events) == 1322
        engine = DeploymentEngine(w.vnfs, w.capacities)
        report = ServingLayer(engine, rebalance_every=25).process(events)
        assert report.arrivals == 742
        assert report.admitted == 678
        assert report.rejected_capacity == 64
        assert report.rejected_bandwidth == 0
        assert report.departures == 531
        assert report.rebalances == 27
        assert report.migrations == 9241
        assert report.final_active == 147
        digest = hashlib.sha256(
            ",".join(engine.active_requests).encode()
        ).hexdigest()[:16]
        assert digest == "2c8f2860dc0a774e"


def _fault_run(policy, *, budget=True, sla=True, rebalance_every=10):
    """One fixed 12/24 scenario under churn + node faults."""
    root = np.random.SeedSequence([20170808, 0])
    scenario_ss, churn_ss, fault_ss = root.spawn(3)
    vnfs, capacities, chains = churn._scenario(scenario_ss)
    events = poisson_churn(
        chains,
        duration=1200.0,
        arrival_rate=0.08,
        mean_holding=300.0,
        rng=np.random.default_rng(churn_ss),
        prefix="fz",
    )
    node_keys = tuple(capacities.keys())
    faults = failure_events(
        node_keys,
        duration=1200.0,
        mtbf=2400.0,
        mttr=120.0,
        rng=np.random.default_rng(fault_ss),
    )
    engine = DeploymentEngine(vnfs, capacities)
    layer = ServingLayer(
        engine,
        rebalance_every=rebalance_every,
        faults=faults,
        recovery=policy,
        budget=(
            MigrationBudget(max_migrations=40, max_moved_load=500.0)
            if budget
            else None
        ),
        sla=SLASpec(latency_threshold=0.5) if sla else None,
    )
    return layer, layer.process(events), engine


class TestFaultPath:
    @pytest.mark.parametrize(
        "policy_cls",
        [LeastLoadedReadmit, WarmStartRelocate, DeferredRecovery],
    )
    def test_deterministic(self, policy_cls):
        layer_a, a, eng_a = _fault_run(policy_cls())
        layer_b, b, eng_b = _fault_run(policy_cls())
        assert (
            a.arrivals, a.admitted, a.rejected_capacity,
            a.rejected_unavailable, a.departures, a.rebalances,
            a.rebalances_skipped, a.migrations, a.crashes, a.evictions,
            a.readmissions, a.lost, a.final_active,
        ) == (
            b.arrivals, b.admitted, b.rejected_capacity,
            b.rejected_unavailable, b.departures, b.rebalances,
            b.rebalances_skipped, b.migrations, b.crashes, b.evictions,
            b.readmissions, b.lost, b.final_active,
        )
        assert eng_a.active_requests == eng_b.active_requests
        assert layer_a.pending == layer_b.pending
        assert (
            a.resilience.availability == b.resilience.availability
        )
        assert (
            a.resilience.violation_seconds
            == b.resilience.violation_seconds
        )

    def test_crashes_and_bookkeeping_consistent(self):
        layer, report, engine = _fault_run(LeastLoadedReadmit())
        assert report.crashes > 0
        assert report.evictions > 0
        # Every eviction is re-admitted, lost, or still pending.
        assert report.evictions == (
            report.readmissions + report.lost + len(layer.pending)
        )
        assert report.recovery_latencies
        res = report.resilience
        assert res is not None
        assert res.crashes == report.crashes
        assert res.evictions == report.evictions
        assert 0.0 <= res.availability <= 1.0
        assert res.demanded_seconds > 0.0

    def test_deferred_repairs_ride_the_rebalance(self):
        # Without periodic rebalances the deferred policy never repairs
        # anything: every eviction is lost or still pending at the end.
        layer, frozen, _engine = _fault_run(
            DeferredRecovery(), rebalance_every=0
        )
        assert frozen.readmissions == 0
        assert frozen.evictions == frozen.lost + len(layer.pending)
        # With (unbudgeted) rebalances enabled, the committed re-solves
        # are the only repair opportunity — and they do readmit.
        _layer, report, _engine = _fault_run(
            DeferredRecovery(), budget=False
        )
        assert report.rebalances > 0
        assert report.readmissions > 0

    def test_no_sla_means_no_resilience_report(self):
        _layer, report, _engine = _fault_run(
            LeastLoadedReadmit(), sla=False
        )
        assert report.resilience is None
        assert report.crashes > 0

    def test_default_recovery_policy_when_faults_given(self):
        engine = DeploymentEngine(
            *_small_scenario(), target_utilization=None
        )
        layer = ServingLayer(engine, faults=[])
        assert isinstance(layer._recovery, LeastLoadedReadmit)

    def test_unavailable_rejections_counted(self):
        vnfs, capacities = _small_scenario()
        engine = DeploymentEngine(
            vnfs, capacities, target_utilization=None
        )
        # Crash every node hosting "fw" before the only arrival.
        fw_nodes = {
            node
            for name, node in engine.placement.items()
            if name == "fw"
        }
        faults = [
            FaultEvent(time=0.5, kind="node_down", node=node)
            for node in sorted(fw_nodes, key=str)
        ]
        from repro.nfv.chain import ServiceChain
        from repro.nfv.request import Request
        from repro.serve.events import ChurnEvent

        arrival = ChurnEvent(
            time=1.0,
            kind="arrival",
            request_id="r0",
            request=Request("r0", ServiceChain(["fw"]), 1.0),
        )
        layer = ServingLayer(engine, faults=faults)
        report = layer.process([arrival])
        assert report.rejected_unavailable == 1
        assert report.admitted == 0
        assert report.rejected == 1


def _small_scenario():
    from repro.nfv.vnf import VNF

    vnfs = [
        VNF("fw", demand_per_instance=10.0, num_instances=1,
            service_rate=100.0),
        VNF("lb", demand_per_instance=8.0, num_instances=1,
            service_rate=100.0),
    ]
    return vnfs, {"n0": 40.0, "n1": 40.0}
