"""Unit tests for seeded failure-event streams (``repro.faults.events``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.faults.events import (
    FaultEvent,
    _KIND_PRIORITY,
    failure_events,
    instance_failures,
    merge_timeline,
)
from repro.nfv.vnf import VNF
from repro.serve.events import ChurnEvent

NODES = ("n0", "n1", "n2", "n3")


def _stream(seed=7, **kwargs):
    params = dict(duration=1000.0, mtbf=120.0, mttr=30.0)
    params.update(kwargs)
    return failure_events(
        NODES, rng=np.random.default_rng(seed), **params
    )


class TestFailureEvents:
    def test_same_seed_same_timeline(self):
        assert _stream(7) == _stream(7)

    def test_different_seed_different_timeline(self):
        assert _stream(7) != _stream(8)

    def test_events_within_horizon_and_sorted(self):
        events = _stream()
        assert events
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < 1000.0 for t in times)
        assert {e.kind for e in events} <= {"node_down", "node_up"}

    def test_per_node_events_alternate_down_up(self):
        events = _stream()
        for node in NODES:
            kinds = [e.kind for e in events if e.node == node]
            # Strict alternation starting with a crash; a final repair
            # may be clipped by the horizon.
            for i, kind in enumerate(kinds):
                expected = "node_down" if i % 2 == 0 else "node_up"
                assert kind == expected

    def test_rack_windows_crash_every_member(self):
        # A rack that fails almost surely within the horizon, node
        # processes that almost surely never do.
        events = failure_events(
            NODES,
            duration=100.0,
            mtbf=1e9,
            mttr=10.0,
            rng=np.random.default_rng(3),
            racks=[NODES[:2]],
            rack_mtbf=10.0,
            rack_mttr=20.0,
        )
        downs = {e.node for e in events if e.kind == "node_down"}
        assert downs == {"n0", "n1"}
        # Correlated: the first crash hits both members at one time.
        first = [e for e in events if e.kind == "node_down"][:2]
        assert first[0].time == first[1].time

    def test_unknown_rack_member_rejected(self):
        with pytest.raises(ValidationError, match="not in nodes"):
            failure_events(
                NODES,
                duration=100.0,
                mtbf=10.0,
                mttr=5.0,
                racks=[("n0", "ghost")],
            )

    @pytest.mark.parametrize(
        "bad", [dict(duration=0.0), dict(mtbf=0.0), dict(mttr=-1.0)]
    )
    def test_bad_process_parameters_rejected(self, bad):
        with pytest.raises(ValidationError):
            _stream(**bad)

    def test_no_nodes_rejected(self):
        with pytest.raises(ValidationError, match="at least one node"):
            failure_events((), duration=10.0, mtbf=1.0, mttr=1.0)


class TestInstanceFailures:
    def test_events_name_vnf_and_instance(self):
        vnfs = [VNF("fw", 1.0, 2, 10.0), VNF("lb", 1.0, 1, 10.0)]
        events = instance_failures(
            vnfs,
            duration=500.0,
            mtbf=60.0,
            mttr=20.0,
            rng=np.random.default_rng(5),
        )
        assert events
        assert {e.kind for e in events} <= {
            "instance_down", "instance_up",
        }
        for event in events:
            assert event.vnf in ("fw", "lb")
            assert 0 <= event.instance < (2 if event.vnf == "fw" else 1)

    def test_deterministic(self):
        vnfs = [VNF("fw", 1.0, 3, 10.0)]
        kwargs = dict(duration=500.0, mtbf=60.0, mttr=20.0)
        a = instance_failures(
            vnfs, rng=np.random.default_rng(2), **kwargs
        )
        b = instance_failures(
            vnfs, rng=np.random.default_rng(2), **kwargs
        )
        assert a == b


class TestMergeTimeline:
    def test_total_order_at_equal_times(self):
        churn = [
            ChurnEvent(time=5.0, kind="departure", request_id="r0"),
            ChurnEvent(time=5.0, kind="arrival", request_id="r1"),
        ]
        faults = [
            FaultEvent(time=5.0, kind="node_down", node="n0"),
            FaultEvent(time=5.0, kind="node_up", node="n1"),
        ]
        merged = merge_timeline(churn, faults)
        assert [e.kind for e in merged] == [
            "node_up", "node_down", "arrival", "departure",
        ]

    def test_stable_within_kind(self):
        a = FaultEvent(time=1.0, kind="node_down", node="a")
        b = FaultEvent(time=1.0, kind="node_down", node="b")
        assert merge_timeline([a], [b]) == [a, b]
        assert merge_timeline([b], [a]) == [b, a]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown event kind"):
            merge_timeline([ChurnEvent(time=0.0, kind="boom",
                                       request_id="x")])

    def test_priorities_cover_both_event_families(self):
        assert set(_KIND_PRIORITY) == {
            "node_up", "instance_up", "node_down", "instance_down",
            "arrival", "departure",
        }
