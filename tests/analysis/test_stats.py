"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    confidence_interval,
    percentile,
    summarize,
)
from repro.exceptions import ValidationError


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == pytest.approx(1.0)
        assert percentile(data, 100) == pytest.approx(9.0)

    def test_p99(self):
        data = list(range(1, 101))
        assert percentile(data, 99) == pytest.approx(99.01)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            percentile([1.0], 101)


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([2.0, 4.0, 6.0, 8.0])
        assert s.count == 4
        assert s.mean == pytest.approx(5.0)
        assert s.minimum == 2.0
        assert s.maximum == 8.0
        assert s.p50 == pytest.approx(5.0)

    def test_std_is_sample_std(self):
        s = summarize([1.0, 3.0])
        assert s.std == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_singleton(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.p99 == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            summarize([])

    def test_ci95_contains_mean(self):
        s = summarize(list(np.random.default_rng(0).normal(10.0, 2.0, 500)))
        lo, hi = s.ci95()
        assert lo < s.mean < hi


class TestConfidenceInterval:
    def test_symmetric(self):
        lo, hi = confidence_interval(10.0, 2.0, 100, 0.95)
        assert hi - 10.0 == pytest.approx(10.0 - lo)
        assert hi - lo == pytest.approx(2 * 1.96 * 2.0 / 10.0, rel=1e-3)

    def test_wider_at_higher_level(self):
        lo95, hi95 = confidence_interval(0.0, 1.0, 10, 0.95)
        lo99, hi99 = confidence_interval(0.0, 1.0, 10, 0.99)
        assert hi99 > hi95

    def test_single_sample_degenerate(self):
        assert confidence_interval(5.0, 0.0, 1) == (5.0, 5.0)

    def test_unsupported_level(self):
        with pytest.raises(ValidationError):
            confidence_interval(0.0, 1.0, 10, 0.5)

    def test_bad_count(self):
        with pytest.raises(ValidationError):
            confidence_interval(0.0, 1.0, 0)
