"""Unit tests for paired algorithm comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import paired_comparison
from repro.exceptions import ValidationError


class TestPairedComparison:
    def test_clear_improvement(self):
        baseline = [10.0, 12.0, 11.0, 13.0]
        candidate = [8.0, 9.0, 8.5, 10.0]
        result = paired_comparison(baseline, candidate)
        assert result.mean_difference > 0.0
        assert result.win_rate == 1.0
        assert result.enhancement_ratio == pytest.approx(
            (np.mean(baseline) - np.mean(candidate)) / np.mean(baseline)
        )

    def test_significance_detection(self):
        rng = np.random.default_rng(0)
        baseline = rng.normal(10.0, 0.5, size=200)
        clearly_better = baseline - 1.0
        noise_only = baseline + rng.normal(0.0, 0.5, size=200)
        assert paired_comparison(baseline, clearly_better).significant
        assert not paired_comparison(baseline, noise_only).significant

    def test_pairing_beats_marginals(self):
        # Huge instance-to-instance variance but a constant 1% edge:
        # paired analysis detects it.
        rng = np.random.default_rng(1)
        base = rng.uniform(10.0, 1000.0, size=100)
        cand = base * 0.99
        result = paired_comparison(base, cand)
        assert result.significant
        assert result.win_rate == 1.0

    def test_regression_detected(self):
        baseline = [10.0] * 50
        worse = [11.0] * 50
        result = paired_comparison(baseline, worse)
        assert result.mean_difference < 0.0
        assert result.win_rate == 0.0
        assert result.significant

    def test_summary_text(self):
        result = paired_comparison([10.0, 10.0, 10.0], [9.0, 9.0, 9.0])
        text = result.summary()
        assert "improves" in text
        assert "100%" in text

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            paired_comparison([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValidationError):
            paired_comparison([], [])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            paired_comparison([1.0, float("inf")], [1.0, 1.0])

    def test_real_schedulers(self):
        """RCKK vs round-robin, paired by instance: makespan win.

        (Makespan, not admission-controlled W: shedding on the heavily
        imbalanced round-robin schedules lowers its surviving load — a
        survivor bias that would contaminate a latency comparison.)
        """
        from repro.scheduling.rckk import RCKKScheduler
        from repro.scheduling.round_robin import RoundRobinScheduler
        from repro.workload.scenarios import SchedulingScenario

        scenario = SchedulingScenario(
            num_requests=25, num_instances=5, rho=0.9, seed=11
        )
        rr_peak, rckk_peak = [], []
        for rep in range(30):
            problem = scenario.build(rep)
            rr_peak.append(
                max(RoundRobinScheduler().schedule(problem).instance_rates())
            )
            rckk_peak.append(
                max(RCKKScheduler().schedule(problem).instance_rates())
            )
        result = paired_comparison(rr_peak, rckk_peak)
        assert result.mean_difference > 0.0
        assert result.win_rate > 0.9
        assert result.significant
