"""Unit tests for the sequential convergence tracker."""

import math

import numpy as np
import pytest

from repro.analysis.convergence import ConvergenceTracker
from repro.exceptions import ValidationError


class TestWelford:
    def test_mean_and_std_match_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(5.0, 2.0, size=200)
        tracker = ConvergenceTracker()
        for s in samples:
            tracker.add(float(s))
        assert tracker.mean == pytest.approx(samples.mean())
        assert tracker.std == pytest.approx(samples.std(ddof=1))
        assert tracker.count == 200

    def test_no_samples(self):
        tracker = ConvergenceTracker()
        with pytest.raises(ValidationError):
            _ = tracker.mean

    def test_nonfinite_rejected(self):
        tracker = ConvergenceTracker()
        with pytest.raises(ValidationError):
            tracker.add(math.inf)


class TestStoppingRule:
    def test_converges_on_low_variance(self):
        tracker = ConvergenceTracker(relative_precision=0.05, min_samples=10)
        rng = np.random.default_rng(1)
        n = 0
        while not tracker.converged() and n < 10_000:
            tracker.add(float(rng.normal(10.0, 0.5)))
            n += 1
        assert tracker.converged()
        lo, hi = tracker.interval()
        assert lo < 10.0 < hi

    def test_min_samples_enforced(self):
        tracker = ConvergenceTracker(min_samples=50)
        for _ in range(49):
            tracker.add(1.0)
        assert not tracker.converged()
        tracker.add(1.0)
        assert tracker.converged()  # zero variance after min samples

    def test_tighter_precision_needs_more_samples(self):
        rng = np.random.default_rng(2)
        samples = [float(rng.normal(10.0, 2.0)) for _ in range(100_000)]

        def samples_to_converge(precision):
            tracker = ConvergenceTracker(
                relative_precision=precision, min_samples=10
            )
            for i, s in enumerate(samples):
                tracker.add(s)
                if tracker.converged():
                    return i + 1
            return len(samples)

        assert samples_to_converge(0.005) > samples_to_converge(0.05)

    def test_half_width_shrinks(self):
        tracker = ConvergenceTracker()
        rng = np.random.default_rng(3)
        widths = []
        for i in range(300):
            tracker.add(float(rng.normal(0.0, 1.0)))
            if i in (30, 100, 299):
                widths.append(tracker.half_width())
        assert widths[0] > widths[1] > widths[2]

    def test_estimated_samples(self):
        tracker = ConvergenceTracker(relative_precision=0.01)
        rng = np.random.default_rng(4)
        for _ in range(50):
            tracker.add(float(rng.normal(10.0, 2.0)))
        estimate = tracker.estimated_samples_needed()
        # (1.96 * 2 / 0.1)^2 ~ 1537.
        assert 800 < estimate < 3000


class TestValidation:
    def test_bad_precision(self):
        with pytest.raises(ValidationError):
            ConvergenceTracker(relative_precision=0.0)

    def test_bad_confidence(self):
        with pytest.raises(ValidationError):
            ConvergenceTracker(confidence=0.8)

    def test_bad_min_samples(self):
        with pytest.raises(ValidationError):
            ConvergenceTracker(min_samples=1)
