"""Legacy setup shim: lets offline environments without the `wheel`
package install in editable mode via `pip install -e . --no-use-pep517`.
All project metadata lives in pyproject.toml."""

from setuptools import setup

setup()
